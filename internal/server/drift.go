package server

// Time-aware observability wiring: the server owns a telemetry.WindowSet
// fed from the /verify decision path (evidence values, outcomes,
// latencies) plus scrape-time runtime samples, and derives from it the
// drift gauges, SLO burn rates, process gauges, and the /debug/drift
// JSON surface. All derivation happens on scrape — the serving path only
// performs the window writes, which are allocation-free.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// Drift/SLO/resource metric names exported on /metrics.
const (
	MetricStageDrift        = "voiceguard_stage_drift"
	MetricStageDriftKS      = "voiceguard_stage_drift_ks"
	MetricSLOBurnRate       = "voiceguard_slo_burn_rate"
	MetricGoHeapBytes       = "voiceguard_go_heap_bytes"
	MetricGoGCPauseUS       = "voiceguard_go_gc_pause_us"
	MetricGoGoroutines      = "voiceguard_go_goroutines"
	MetricStageCPUSeconds   = "voiceguard_stage_cpu_seconds_total"
	MetricAllocsPerDecision = "voiceguard_allocs_per_decision_bytes"
)

// DriftRoute serves the drift/SLO/resource JSON report.
const DriftRoute = "/debug/drift"

// DriftPinRoute pins the live distribution as the drift baseline (POST;
// optional ?window=10m lookback, default the live window).
const DriftPinRoute = "/debug/drift/pin"

// DefaultDriftAlertPSI is the PSI above which a series alerts — the
// conventional "population has shifted, act" threshold.
const DefaultDriftAlertPSI = telemetry.PSIActionAbove

// seriesKey addresses one drift gauge pair without allocating.
type seriesKey struct{ stage, metric string }

// burnKey addresses one burn-rate gauge.
type burnKey struct{ slo, window string }

// WithSLO declares the serving objectives: availability (fraction of
// attempts answered with a decision) and latency (fraction of decided
// verifies at or under goodUnder). Burn-rate gauges over 5m/1h/6h
// windows appear on /metrics and /debug/drift. An objective ≤ 0 or ≥ 1
// disables that SLO.
func WithSLO(availability, latency float64, goodUnder time.Duration) Option {
	return func(s *Server) {
		s.slo = telemetry.SLOConfig{
			AvailabilityObjective: availability,
			LatencyObjective:      latency,
		}
		s.sloGoodUnder = goodUnder
	}
}

// WithWindowConfig overrides the rolling-window geometry and clock —
// tests and replay experiments inject a simulated clock here so rotation
// and drift are deterministic.
func WithWindowConfig(cfg telemetry.WindowConfig) Option {
	return func(s *Server) { s.windowCfg = &cfg }
}

// WithDriftEndpoint toggles the /debug/drift JSON surface (enabled by
// default — unlike the decision endpoints it exposes only aggregate
// distributions, no per-user evidence). Windows are still fed when
// disabled; only the HTTP route goes away.
func WithDriftEndpoint(enabled bool) Option {
	return func(s *Server) { s.driftOff = !enabled }
}

// WithDriftAlertPSI overrides the PSI alert threshold reported on
// /debug/drift (default DefaultDriftAlertPSI).
func WithDriftAlertPSI(threshold float64) Option {
	return func(s *Server) { s.driftAlertPSI = threshold }
}

// WithStageResources enables per-stage CPU attribution: the cascade's
// TimeStage closures pin their goroutine and stamp thread-CPU deltas,
// exported as the voiceguard_stage_cpu_seconds_total family. Costs one
// LockOSThread + two getrusage calls per stage; off by default.
func WithStageResources() Option {
	return func(s *Server) { s.stageResources = true }
}

// initObservability builds the window set and registers the derived
// metric families. Called from New after the registry exists.
func (s *Server) initObservability() {
	cfg := telemetry.WindowConfig{}
	if s.windowCfg != nil {
		cfg = *s.windowCfg
	}
	if cfg.LatencyGoodUnder == 0 {
		cfg.LatencyGoodUnder = s.sloGoodUnder
	}
	defs := core.EvidenceSeriesDefs()
	s.windows = telemetry.NewWindowSet(cfg, defs)
	s.observer = core.NewEvidenceObserver(s.windows)
	if stats.IsZero(s.driftAlertPSI) {
		s.driftAlertPSI = DefaultDriftAlertPSI
	}

	r := s.registry
	s.driftPSI = make(map[seriesKey]*telemetry.Gauge, len(defs))
	s.driftKS = make(map[seriesKey]*telemetry.Gauge, len(defs))
	for _, d := range defs {
		labels := telemetry.Labels{"stage": d.Stage, "metric": d.Metric}
		k := seriesKey{stage: d.Stage, metric: d.Metric}
		s.driftPSI[k] = r.Gauge(MetricStageDrift, labels)
		s.driftKS[k] = r.Gauge(MetricStageDriftKS, labels)
	}
	r.SetHelp(MetricStageDrift, "PSI between the live evidence window and the pinned baseline")
	r.SetHelp(MetricStageDriftKS, "binned two-sample KS statistic between the live window and the pinned baseline")

	if s.sloConfigured() {
		s.burnGauges = make(map[burnKey]*telemetry.Gauge)
		for _, br := range s.windows.BurnRates(s.slo, nil) {
			s.burnGauges[burnKey{slo: br.SLO, window: br.Window}] =
				r.Gauge(MetricSLOBurnRate, telemetry.Labels{"slo": br.SLO, "window": br.Window})
		}
		r.SetHelp(MetricSLOBurnRate, "error-budget burn rate (bad ratio / budget) per objective and window")
	}

	s.goHeap = r.Gauge(MetricGoHeapBytes, nil)
	r.SetHelp(MetricGoHeapBytes, "live heap object bytes (runtime/metrics)")
	s.goGCPause = r.Gauge(MetricGoGCPauseUS, nil)
	r.SetHelp(MetricGoGCPauseUS, "cumulative GC stop-the-world pause microseconds")
	s.goGoroutines = r.Gauge(MetricGoGoroutines, nil)
	r.SetHelp(MetricGoGoroutines, "current goroutine count")
	s.allocsPerDecision = r.Gauge(MetricAllocsPerDecision, nil)
	r.SetHelp(MetricAllocsPerDecision, "heap bytes allocated per decided verify over the live window")

	if s.stageResources {
		core.SetResourceAttribution(true)
		s.stageCPU = make(map[core.Stage]*telemetry.Gauge)
		for _, st := range []core.Stage{
			core.StageDistance, core.StageSoundField, core.StageLoudspeaker, core.StageSpeakerID,
		} {
			s.stageCPU[st] = r.Gauge(MetricStageCPUSeconds, telemetry.Labels{"stage": st.MetricName()})
		}
		r.SetHelp(MetricStageCPUSeconds, "cumulative thread CPU seconds attributed to each cascade stage")
	}
}

// sloConfigured reports whether any objective is active.
func (s *Server) sloConfigured() bool {
	return (s.slo.AvailabilityObjective > 0 && s.slo.AvailabilityObjective < 1) ||
		(s.slo.LatencyObjective > 0 && s.slo.LatencyObjective < 1)
}

// observeOutcome feeds one verify outcome into the rolling windows.
func (s *Server) observeOutcome(o telemetry.VerifyOutcome, latency time.Duration) {
	s.windows.ObserveVerify(o, latency)
}

// observeDecision feeds a decided verify's evidence and stage resources
// into the windows and CPU gauges. Allocation-free.
func (s *Server) observeDecision(d *core.Decision) {
	s.observer.ObserveDecision(d)
	if s.stageCPU == nil {
		return
	}
	for i := range d.Stages {
		st := &d.Stages[i]
		if st.CPU > 0 {
			if g, ok := s.stageCPU[st.Stage]; ok {
				g.Add(st.CPU.Seconds())
			}
		}
	}
}

// refreshObservability recomputes every window-derived gauge. Runs at
// scrape/report time, never on the serving path.
func (s *Server) refreshObservability() {
	sample := telemetry.ReadRuntimeSample()
	s.windows.RecordRuntime(sample)
	s.goHeap.Set(float64(sample.HeapBytes))
	s.goGCPause.Set(float64(sample.GCPauseTotalUS))
	s.goGoroutines.Set(float64(sample.Goroutines))
	for _, ds := range s.windows.Drift() {
		k := seriesKey{stage: ds.Stage, metric: ds.Metric}
		if g, ok := s.driftPSI[k]; ok {
			g.Set(ds.PSI)
		}
		if g, ok := s.driftKS[k]; ok {
			g.Set(ds.KS)
		}
	}
	if s.burnGauges != nil {
		for _, br := range s.windows.BurnRates(s.slo, nil) {
			if g, ok := s.burnGauges[burnKey{slo: br.SLO, window: br.Window}]; ok {
				g.Set(br.Burn)
			}
		}
	}
	s.allocsPerDecision.Set(s.windows.Resources().AllocPerDecisionBytes)
}

// DriftReport computes the current drift/SLO/resource report — the same
// document /debug/drift serves.
func (s *Server) DriftReport(timeline int) telemetry.DriftReport {
	s.refreshObservability()
	rep := telemetry.DriftReport{
		GeneratedUnix: time.Now().Unix(),
		LiveWindow:    s.windows.LiveWindow().String(),
		AlertPSI:      s.driftAlertPSI,
	}
	if b := s.windows.Baseline(); b != nil {
		rep.BaselinePinnedUnix = b.PinnedUnix
		rep.BaselineWindow = b.Window.String()
	}
	for _, ds := range s.windows.Drift() {
		e := telemetry.DriftEntry{
			Stage: ds.Stage, Metric: ds.Metric,
			PSI: ds.PSI, KS: ds.KS,
			Alert:     ds.PSI > s.driftAlertPSI,
			LiveCount: ds.LiveCount, BaselineCount: ds.BaselineCount,
		}
		if !isNaN(ds.LiveMean) {
			e.LiveMean = ds.LiveMean
		}
		if !isNaN(ds.BaselineMean) {
			e.BaselineMean = ds.BaselineMean
		}
		rep.Drift = append(rep.Drift, e)
	}
	if s.sloConfigured() {
		for _, br := range s.windows.BurnRates(s.slo, nil) {
			rep.Burn = append(rep.Burn, telemetry.BurnEntry{
				SLO: br.SLO, Window: br.Window,
				Burn: br.Burn, BadRatio: br.BadRatio, Total: br.Total,
			})
		}
	}
	u := s.windows.Resources()
	rep.Resources = telemetry.ResourceEntry{
		HeapBytes:             u.HeapBytes,
		Goroutines:            u.Goroutines,
		GCPauseTotalUS:        u.GCPauseTotalUS,
		AllocPerDecisionBytes: u.AllocPerDecisionBytes,
		GCPausePerDecisionUS:  u.GCPausePerDecisionUS,
		Samples:               u.Samples,
	}
	rep.Timeline = s.windows.Timeline(timeline)
	return rep
}

// isNaN avoids importing math for two call sites.
func isNaN(f float64) bool { return f != f }

// PinDriftBaseline snapshots the trailing lookback as the drift
// baseline (0 uses the live window).
func (s *Server) PinDriftBaseline(lookback time.Duration) {
	if lookback <= 0 {
		lookback = s.windows.LiveWindow()
	}
	s.windows.PinBaseline(lookback)
}

// Windows exposes the rolling-window set (tests, experiments).
func (s *Server) Windows() *telemetry.WindowSet { return s.windows }

// handleDrift serves the drift/SLO/resource JSON report. ?timeline=N
// bounds the fine-ring timeline (default 15 slots, 0 allowed).
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	timeline := 15
	if raw := r.URL.Query().Get("timeline"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad timeline %q: want a non-negative integer", raw), http.StatusBadRequest)
			return
		}
		timeline = n
	}
	rep := s.DriftReport(timeline)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(rep); err != nil {
		s.logger.Error("encoding drift report", "err", err)
	}
}

// handleDriftPin pins the drift baseline from the trailing window.
// POST only; optional ?window=10m lookback.
func (s *Server) handleDriftPin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	lookback := s.windows.LiveWindow()
	if raw := r.URL.Query().Get("window"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad window %q: want a positive duration", raw), http.StatusBadRequest)
			return
		}
		lookback = d
	}
	b := s.windows.PinBaseline(lookback)
	s.logger.Info("drift baseline pinned", "window", lookback)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{
		"pinned_unix": b.PinnedUnix,
		"window":      b.Window.String(),
	}); err != nil {
		s.logger.Error("encoding pin response", "err", err)
	}
}
