package server

// Prometheus text-format conformance: /metrics must stay scrapeable by a
// strict parser, not just by the lenient splitter scrapeMetrics uses. The
// in-test parser checks the exposition line by line — HELP/TYPE
// discipline, contiguous family blocks, label syntax, no duplicate
// series, histogram bucket invariants — in both negotiated formats: the
// classic text exposition must be exemplar-free (the standard Prometheus
// text parser errors on a trailing `#`), while the OpenMetrics exposition
// (Accept: application/openmetrics-text) must carry bucket exemplars and
// the `# EOF` terminator.

import (
	"bufio"
	"io"
	"math"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/device"
	"voiceguard/internal/speech"
)

var (
	headerRe    = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)(?: (.*))?$`)
	seriesRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)( # \{[^{}]*\} \S+ \S+)?$`)
	labelPairRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	exemplarRe  = regexp.MustCompile(`^ # \{trace_id="((?:[^"\\]|\\.)*)"\} (\S+) (\S+)$`)
)

// promSeries is one parsed sample line.
type promSeries struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// parseLabels splits a {k="v",...} block, enforcing pair syntax.
func parseLabels(t *testing.T, block, line string) map[string]string {
	t.Helper()
	out := map[string]string{}
	if block == "" {
		return out
	}
	body := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if body == "" {
		t.Errorf("empty label block in %q", line)
		return out
	}
	for _, pair := range strings.Split(body, ",") {
		if !labelPairRe.MatchString(pair) {
			t.Errorf("malformed label pair %q in %q", pair, line)
			continue
		}
		eq := strings.IndexByte(pair, '=')
		k := pair[:eq]
		v, err := strconv.Unquote(pair[eq+1:])
		if err != nil {
			t.Errorf("unquoting label value in %q: %v", line, err)
			continue
		}
		if _, dup := out[k]; dup {
			t.Errorf("duplicate label %q in %q", k, line)
		}
		out[k] = v
	}
	return out
}

// baseFamily strips a histogram sample suffix.
func baseFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// parseExposition runs the strict parser over one /metrics body and
// returns every sample, failing the test on any conformance violation.
// openMetrics selects the format contract: exemplars and the `# EOF`
// terminator are required there and forbidden in the classic text format.
func parseExposition(t *testing.T, body io.Reader, openMetrics bool) []promSeries {
	t.Helper()
	var (
		series    []promSeries
		seen      = map[string]bool{} // full series key → dup detection
		typeOf    = map[string]string{}
		helpSeen  = map[string]bool{}
		closed    = map[string]bool{} // families whose block has ended
		current   string
		exemplars int
		sawEOF    bool
	)
	enter := func(family, line string) {
		if family != current {
			if closed[family] {
				t.Errorf("family %s reopened by %q; blocks must be contiguous", family, line)
			}
			if current != "" {
				closed[current] = true
			}
			current = family
		}
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if sawEOF {
			t.Errorf("content after # EOF terminator: %q", line)
			continue
		}
		if line == "# EOF" {
			if !openMetrics {
				t.Error("# EOF terminator in classic text exposition")
			}
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			m := headerRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("malformed comment line %q", line)
				continue
			}
			kind, family := m[1], m[2]
			enter(family, line)
			switch kind {
			case "HELP":
				if helpSeen[family] {
					t.Errorf("duplicate HELP for %s", family)
				}
				helpSeen[family] = true
			case "TYPE":
				if _, dup := typeOf[family]; dup {
					t.Errorf("duplicate TYPE for %s", family)
				}
				switch m[3] {
				case "counter", "gauge", "histogram":
					typeOf[family] = m[3]
				default:
					t.Errorf("unknown TYPE %q for %s", m[3], family)
				}
			}
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name, labelBlock, valueStr, exemplar := m[1], m[2], m[3], m[4]
		family := baseFamily(name)
		if _, ok := typeOf[family]; !ok {
			family = name // counters/gauges whose name happens to end in a suffix
		}
		if _, ok := typeOf[family]; !ok && openMetrics {
			// OpenMetrics counter families drop the _total sample suffix
			// on their metadata lines.
			if trimmed := strings.TrimSuffix(name, "_total"); trimmed != name && typeOf[trimmed] == "counter" {
				family = trimmed
			}
		}
		kind, ok := typeOf[family]
		if !ok {
			t.Errorf("series %q precedes its TYPE line", line)
			continue
		}
		enter(family, line)
		if kind != "histogram" && name != family &&
			!(openMetrics && kind == "counter" && name == family+"_total") {
			t.Errorf("series %q carries a histogram suffix but %s is a %s", line, family, kind)
		}
		v, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
			continue
		}
		key := name + labelBlock
		if seen[key] {
			t.Errorf("duplicate series %s", key)
		}
		seen[key] = true
		labels := parseLabels(t, labelBlock, line)
		if exemplar != "" {
			if !openMetrics {
				t.Errorf("exemplar in classic text exposition breaks standard scrapers: %q", line)
			}
			if !strings.HasSuffix(name, "_bucket") {
				t.Errorf("exemplar on non-bucket line %q", line)
			}
			em := exemplarRe.FindStringSubmatch(exemplar)
			if em == nil {
				t.Errorf("malformed exemplar in %q", line)
			} else {
				ev, err := strconv.ParseFloat(em[2], 64)
				if err != nil {
					t.Errorf("unparseable exemplar value in %q: %v", line, err)
				}
				if ts, err := strconv.ParseFloat(em[3], 64); err != nil || ts <= 0 {
					t.Errorf("bad exemplar timestamp in %q: %v", line, err)
				}
				if le, err := strconv.ParseFloat(labels["le"], 64); err == nil && ev > le {
					t.Errorf("exemplar value %g above bucket bound le=%g in %q", ev, le, line)
				}
				if em[1] == "" {
					t.Errorf("empty exemplar trace_id in %q", line)
				}
				exemplars++
			}
		}
		series = append(series, promSeries{name: name, labels: labels, value: v, line: line})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if openMetrics {
		if exemplars == 0 {
			t.Error("no exemplars in the OpenMetrics exposition; traced traffic should have attached some")
		}
		if !sawEOF {
			t.Error("OpenMetrics exposition missing the # EOF terminator")
		}
	}

	// Histogram invariants per label set: buckets cumulative in le order,
	// +Inf present and equal to _count, _sum present.
	type hkey struct{ family, labels string }
	buckets := map[hkey][]promSeries{}
	counts := map[hkey]float64{}
	sums := map[hkey]bool{}
	labelsWithoutLe := func(s promSeries) string {
		var parts []string
		for k, v := range s.labels {
			if k != "le" {
				parts = append(parts, k+"="+strconv.Quote(v))
			}
		}
		// Map iteration order is neutralized by sorting the pairs.
		sortStrings(parts)
		return "{" + strings.Join(parts, ",") + "}"
	}
	for _, s := range series {
		fam := baseFamily(s.name)
		if typeOf[fam] != "histogram" {
			continue
		}
		k := hkey{fam, labelsWithoutLe(s)}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.name, "_count"):
			counts[k] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			sums[k] = true
		}
	}
	for k, bs := range buckets {
		prev := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range bs {
			leStr := b.labels["le"]
			le := math.Inf(1)
			if leStr != "+Inf" {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Errorf("bad le %q in %q", leStr, b.line)
					continue
				}
			} else {
				sawInf = true
			}
			if le <= prev {
				t.Errorf("%s%s buckets not in increasing le order", k.family, k.labels)
			}
			if b.value < prevCum {
				t.Errorf("%s%s bucket counts not cumulative at le=%s", k.family, k.labels, leStr)
			}
			prev, prevCum = le, b.value
		}
		if !sawInf {
			t.Errorf("%s%s missing le=\"+Inf\" bucket", k.family, k.labels)
		}
		if c, ok := counts[k]; !ok || c != prevCum {
			t.Errorf("%s%s _count = %g, want +Inf bucket %g", k.family, k.labels, c, prevCum)
		}
		if !sums[k] {
			t.Errorf("%s%s missing _sum", k.family, k.labels)
		}
	}
	return series
}

// sortStrings is an insertion sort over a handful of label pairs.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

func TestMetricsPrometheusConformance(t *testing.T) {
	_, ts := testServer(t)

	// Traffic: one accept, one reject, so counters, both latency
	// histograms and their exemplars are all populated.
	c := client.New(ts.URL)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(31)))
	genuine, err := attack.Genuine(victim, attack.Scenario{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(genuine); err != nil {
		t.Fatal(err)
	}
	recd, err := attack.Record(victim, "472913", 32)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := attack.Replay(recd, device.Catalog()[0], attack.Scenario{Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Verify(replay); err != nil {
		t.Fatal(err)
	}

	// Classic exposition: the default-Accept scrape every stock Prometheus
	// parser must be able to swallow — strictly exemplar-free.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("classic scrape content-type = %q", ct)
	}
	series := parseExposition(t, resp.Body, false)
	resp.Body.Close()
	if len(series) == 0 {
		t.Fatal("empty exposition")
	}
	for _, s := range series {
		if s.name == MetricPipelineLatency+"_count" && s.value < 2 {
			t.Errorf("pipeline histogram count = %g, want ≥ 2", s.value)
		}
	}

	// OpenMetrics exposition, negotiated via Accept: same series plus
	// bucket exemplars and the # EOF terminator.
	omReq, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	omReq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	omResp, err := http.DefaultClient.Do(omReq)
	if err != nil {
		t.Fatal(err)
	}
	if ct := omResp.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("OpenMetrics scrape content-type = %q", ct)
	}
	raw, err := io.ReadAll(omResp.Body)
	omResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	parseExposition(t, strings.NewReader(string(raw)), true)

	// The exemplar on a pipeline-latency bucket must reference a trace the
	// flight recorder can replay — that is the whole point of the link.
	var traceID string
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, MetricPipelineLatency+"_bucket") {
			continue
		}
		if m := seriesRe.FindStringSubmatch(line); m != nil && m[4] != "" {
			if em := exemplarRe.FindStringSubmatch(m[4]); em != nil {
				traceID = em[1]
				break
			}
		}
	}
	if traceID == "" {
		t.Fatal("no exemplar on any pipeline-latency bucket")
	}
	tr, err := http.Get(ts.URL + TraceRoute + traceID)
	if err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("exemplar trace %s not retrievable: status %d", traceID, tr.StatusCode)
	}
}
