package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/speech"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Decision endpoints are opt-in in production; tests exercise them.
	srv, err := New(sys, nil, WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestNewRequiresSystem(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil system accepted")
	}
}

func TestEndToEndGenuineAccepted(t *testing.T) {
	srv, ts := testServer(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(1)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := client.New(ts.URL)
	res, err := c.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Response.Accepted {
		t.Errorf("genuine rejected: %+v", res.Response)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time measured")
	}
	if res.PayloadBytes <= 0 {
		t.Error("no payload size")
	}
	st := srv.Stats()
	if st.Requests != 1 || st.Accepted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEndToEndReplayRejected(t *testing.T) {
	srv, ts := testServer(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(2)))
	rec, err := attack.Record(victim, "472913", 2)
	if err != nil {
		t.Fatal(err)
	}
	session, err := attack.Replay(rec, device.Catalog()[0], attack.Scenario{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.New(ts.URL).Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if res.Response.Accepted {
		t.Error("replay accepted end-to-end")
	}
	if res.Response.FailedStage == "" {
		t.Error("missing failed stage")
	}
	if srv.Stats().Rejected != 1 {
		t.Errorf("stats = %+v", srv.Stats())
	}
}

func TestVerifyRejectsBadMethod(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/verify", "application/gzip", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if vr.Error == "" {
		t.Error("missing error detail")
	}
	if srv.Stats().Errors != 1 {
		t.Errorf("stats = %+v", srv.Stats())
	}
}

func TestHealthAndStatsEndpoints(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
}

func TestListenAndServe(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	go func() {
		// Serve blocks; the test process exits and reaps it.
		_ = srv.ListenAndServe("127.0.0.1:0", ready)
	}()
	addr := <-ready
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	// A second server on the same port fails to bind.
	srv2, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.ListenAndServe(addr, nil); err == nil {
		t.Error("double bind accepted")
	}
}

func TestConcurrentVerifications(t *testing.T) {
	srv, ts := testServer(t)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(3)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/verify", "application/gzip", bytes.NewReader(payload))
			if err == nil {
				resp.Body.Close()
			}
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Stats().Requests; got != n {
		t.Errorf("requests = %d, want %d", got, n)
	}
}
