package server

// Load-management tests: per-request deadlines (503), admission control
// (429), graceful drain of in-flight verifications, the abandoned-ready-
// channel fix, and the client retry loop observed end to end through the
// server's flight recorder.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
	"voiceguard/internal/speech"
)

// genuineSession builds a decodable genuine session for client uploads.
func genuineSession(t *testing.T, seed int64) *core.SessionData {
	t.Helper()
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(seed)))
	session, err := attack.Genuine(victim, attack.Scenario{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return session
}

// hungVerifySystem builds a distance-only system whose single stage
// parks in the StageHook until release is called (idempotent; test
// cleanup calls it as a backstop). started reports each stage entry.
func hungVerifySystem(t *testing.T) (*core.System, chan struct{}, func()) {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{
		FieldSeed: 41, DisableField: true, DisableMagnetic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 64)
	releaseCh := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(releaseCh) }) }
	t.Cleanup(release)
	sys.StageHook = func(ctx context.Context, st core.Stage) {
		started <- struct{}{}
		<-releaseCh
	}
	return sys, started, release
}

// postVerify uploads payload to /verify under the given trace ID.
func postVerifyID(t *testing.T, base string, traceID string, payload []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/verify", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) protocol.VerifyResponse {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var vr protocol.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return vr
}

// TestVerifyTimeoutReturns503 checks the deadline path end to end: a
// hung pipeline stage under WithVerifyTimeout answers 503 with the
// structured JSON envelope carrying the trace ID, and the attempt lands
// in the deadline_exceeded counter — never in accepted/rejected.
func TestVerifyTimeoutReturns503(t *testing.T) {
	sys, started, _ := hungVerifySystem(t)
	srv, err := New(sys, nil, WithVerifyTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := newHandlerServer(t, srv)

	resp := postVerifyID(t, ts, "deadline-req-1", genuinePayload(t, 41))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	vr := decodeEnvelope(t, resp)
	if vr.TraceID != "deadline-req-1" {
		t.Errorf("envelope trace_id = %q", vr.TraceID)
	}
	if !strings.Contains(vr.Error, "abandoned") {
		t.Errorf("envelope error = %q, want an honest abandonment message", vr.Error)
	}
	select {
	case <-started:
	default:
		t.Error("stage hook never entered; the deadline was never racing real work")
	}
	st := srv.Stats()
	if st.DeadlineExceeded != 1 {
		t.Errorf("Stats.DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
	if st.Accepted != 0 || st.Rejected != 0 {
		t.Errorf("timeout leaked into a verdict counter: %+v", st)
	}
	if st.Requests != 1 {
		t.Errorf("Stats.Requests = %d, want 1", st.Requests)
	}
}

// newHandlerServer serves srv.Handler() on a real listener and returns
// the base URL. httptest.Server is avoided where tests also need
// ListenAndServe/Shutdown semantics; this helper keeps the simple cases
// uniform.
func newHandlerServer(t *testing.T, srv *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	})
	return "http://" + ln.Addr().String()
}

// TestMaxInflightShedsExcessVerify fills all 16 admission slots with
// hung verifications and checks that the 17th is shed immediately: 429,
// Retry-After, structured envelope, shed counter — and that the parked
// 16 still complete once released.
func TestMaxInflightShedsExcessVerify(t *testing.T) {
	sys, started, release := hungVerifySystem(t)
	srv, err := New(sys, nil, WithMaxInflightVerifies(16))
	if err != nil {
		t.Fatal(err)
	}
	ts := newHandlerServer(t, srv)
	payload := genuinePayload(t, 42)

	statuses := make(chan int, 16)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postVerifyID(t, ts, "", payload)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Wait until every slot provably reached the pipeline stage, so the
	// 17th request races nothing.
	for i := 0; i < 16; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of 16 verifications reached the pipeline", i)
		}
	}

	resp := postVerifyID(t, ts, "shed-req-1", payload)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("17th concurrent verify: status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After hint")
	}
	vr := decodeEnvelope(t, resp)
	if vr.TraceID != "shed-req-1" {
		t.Errorf("shed envelope trace_id = %q", vr.TraceID)
	}
	if !strings.Contains(vr.Error, "overloaded") {
		t.Errorf("shed envelope error = %q", vr.Error)
	}

	release()
	wg.Wait()
	close(statuses)
	for code := range statuses {
		if code != http.StatusOK {
			t.Errorf("parked verify finished with status %d, want 200", code)
		}
	}
	st := srv.Stats()
	if st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}
	if st.Accepted+st.Rejected != 16 {
		t.Errorf("verdicts = %d, want all 16 parked verifies decided", st.Accepted+st.Rejected)
	}
	if st.Requests != 17 {
		t.Errorf("Stats.Requests = %d, want 17", st.Requests)
	}
}

// TestShutdownDrainsInflightVerify pins graceful-drain semantics: with a
// verification parked in the pipeline, Shutdown closes the listener to
// new work but blocks until the in-flight decision is delivered intact.
func TestShutdownDrainsInflightVerify(t *testing.T) {
	sys, started, release := hungVerifySystem(t)
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	type verifyResult struct {
		status   int
		accepted bool
		err      error
	}
	verified := make(chan verifyResult, 1)
	payload := genuinePayload(t, 43)
	go func() {
		req, err := http.NewRequest(http.MethodPost, base+"/verify", bytes.NewReader(payload))
		if err != nil {
			verified <- verifyResult{err: err}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			verified <- verifyResult{err: err}
			return
		}
		defer resp.Body.Close()
		var vr protocol.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			verified <- verifyResult{err: err}
			return
		}
		verified <- verifyResult{status: resp.StatusCode, accepted: vr.Accepted}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("verification never reached the pipeline")
	}

	shutdownDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(shutdownCtx) }()

	// Shutdown must not return while the verification is still parked.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a verification still in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	release()
	select {
	case res := <-verified:
		if res.err != nil {
			t.Fatalf("drained verify failed: %v", res.err)
		}
		if res.status != http.StatusOK || !res.accepted {
			t.Errorf("drained verify: status=%d accepted=%v, want 200/true", res.status, res.accepted)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight verify never completed after release")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown = %v after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight verify drained")
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// A post-shutdown request fails cleanly at the transport, it does not
	// hang or crash.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after shutdown")
	}
}

// TestListenAndServeAbandonedReady pins the ready-channel fix: a caller
// that never receives from an unbuffered ready channel must not deadlock
// the serving goroutine before it ever accepts a connection. The bound
// address stays discoverable through Addr.
func TestListenAndServeAbandonedReady(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 44, DisableField: true, DisableMagnetic: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil)
	if err != nil {
		t.Fatal(err)
	}
	ready := make(chan string) // unbuffered, and nobody ever receives
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0", ready) }()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never bound; ListenAndServe is deadlocked on the abandoned ready channel")
		}
		addr = srv.Addr()
		if addr == "" {
			select {
			case err := <-serveErr:
				t.Fatalf("ListenAndServe returned early: %v", err)
			case <-time.After(5 * time.Millisecond):
			}
		}
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("server bound %s but does not answer: %v", addr, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("ListenAndServe returned %v, want ErrServerClosed", err)
	}
}

// flakyTransport fails the first n round-trips with a transport error,
// then forwards to the default transport.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	attempts int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.attempts++
	fail := f.attempts <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, errors.New("injected: connection reset by peer")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestClientRetryRecordsOneTrace drives the full loop from the issue's
// acceptance list: a client retrying through a flaky transport succeeds,
// every attempt reuses one trace ID, and the server's flight recorder
// holds exactly one trace under that ID.
func TestClientRetryRecordsOneTrace(t *testing.T) {
	srv, ts := testServer(t)

	c := client.New(ts.URL)
	c.HTTP = &http.Client{Transport: &flakyTransport{failures: 2}, Timeout: 30 * time.Second}
	c.Retry = &client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}

	res, err := c.VerifyContext(context.Background(), genuineSession(t, 45))
	if err != nil {
		t.Fatalf("verify through flaky transport: %v", err)
	}
	if !res.Response.Accepted {
		t.Errorf("genuine rejected: %+v", res.Response)
	}
	if res.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", res.Attempts)
	}
	if res.Response.TraceID != res.TraceID {
		t.Errorf("server echoed trace %q, client sent %q", res.Response.TraceID, res.TraceID)
	}
	if srv.FlightRecorder().Find(res.TraceID) == nil {
		t.Fatalf("trace %q not in the flight recorder", res.TraceID)
	}
	matches := 0
	for _, tr := range srv.FlightRecorder().Snapshot() {
		if tr.TraceID == res.TraceID {
			matches++
		}
	}
	if matches != 1 {
		t.Errorf("flight recorder holds %d traces for %q, want exactly 1", matches, res.TraceID)
	}
}

// TestMethodGuardsReturnJSONEnvelope checks every POST endpoint answers
// a wrong-method request with the same machine-readable envelope the
// rest of the error paths use, never a bare text line.
func TestMethodGuardsReturnJSONEnvelope(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/verify", "/voiceprint", "/enroll"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s Content-Type = %q, want application/json", path, ct)
		}
		var envelope struct {
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Errorf("GET %s: non-JSON 405 body: %v", path, err)
		}
		resp.Body.Close()
		if envelope.Error == "" {
			t.Errorf("GET %s: envelope has no error field", path)
		}
		if envelope.TraceID == "" {
			t.Errorf("GET %s: envelope has no trace_id", path)
		}
	}
}

// TestVoiceprintErrorsCounted checks malformed voiceprint uploads land
// in the labeled error counter instead of vanishing.
func TestVoiceprintErrorsCounted(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/voiceprint", "application/gzip",
		strings.NewReader("not a gzip payload"))
	if err != nil {
		t.Fatal(err)
	}
	vr := decodeEnvelope(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	if vr.Error == "" || vr.TraceID == "" {
		t.Errorf("voiceprint error envelope incomplete: %+v", vr)
	}
	decodeErrs := srv.Registry().Counter(MetricVoiceprintErrors, map[string]string{"reason": "decode"})
	if decodeErrs.Value() != 1 {
		t.Errorf("decode error counter = %d, want 1", decodeErrs.Value())
	}
}
