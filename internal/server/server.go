// Package server implements the verification backend of the paper's
// prototype (§V): an HTTP server that accepts gzip-compressed session
// uploads on /verify, runs the VoiceGuard pipeline, and returns the
// decision. The paper uses Tornado for parallel request handling; net/http
// provides the same per-request concurrency here.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/protocol"
)

// Server wraps the pipeline behind HTTP.
type Server struct {
	system *core.System
	logger *log.Logger

	mu    sync.Mutex
	stats Stats
}

// Stats counts served requests.
type Stats struct {
	// Requests is the total number of /verify calls.
	Requests int
	// Accepted and Rejected count decisions.
	Accepted, Rejected int
	// Errors counts malformed or failed requests.
	Errors int
}

// New builds a server around a pipeline. logger may be nil to disable
// request logging.
func New(system *core.System, logger *log.Logger) (*Server, error) {
	if system == nil {
		return nil, errors.New("server: nil system")
	}
	return &Server{system: system, logger: logger}, nil
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/voiceprint", s.handleVoiceprint)
	mux.HandleFunc("/enroll", s.handleEnroll)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleEnroll registers a user with the ASV stage. It requires the
// server to have an identity back-end attached.
func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	respond := func(status int, resp *protocol.EnrollResponse) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			s.logf("server: encoding enroll response: %v", err)
		}
	}
	if s.system.Identity == nil {
		respond(http.StatusNotImplemented, &protocol.EnrollResponse{Error: "no ASV stage attached"})
		return
	}
	req, err := protocol.DecodeEnroll(r.Body)
	if err != nil {
		respond(http.StatusBadRequest, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	sessions, err := protocol.SessionsFromEnroll(req)
	if err != nil {
		respond(http.StatusBadRequest, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	if err := s.system.Identity.Enroll(req.User, sessions); err != nil {
		respond(http.StatusUnprocessableEntity, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	s.logf("server: enrolled user %q (%d sessions)", req.User, len(sessions))
	respond(http.StatusOK, &protocol.EnrollResponse{OK: true})
}

// handleVoiceprint serves the voice-only baseline scheme (Fig. 15): it
// runs only the ASV stage when one is attached, and accepts otherwise
// (transport-path measurement).
func (s *Server) handleVoiceprint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	req, err := protocol.DecodeVoiceprint(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := &protocol.VerifyResponse{Accepted: true}
	if s.system.Identity != nil {
		voice, err := protocol.VoiceFromRequest(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res := s.system.Identity.Verify(req.ClaimedUser, voice)
		resp.Accepted = res.Pass
		if !res.Pass {
			resp.FailedStage = res.Stage.String()
		}
		resp.Stages = []protocol.StageJSON{{
			Stage: res.Stage.String(), Pass: res.Pass, Score: res.Score, Detail: res.Detail,
		}}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logf("server: encoding voiceprint response: %v", err)
	}
}

// Stats returns a snapshot of the request counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.Stats()
	if err := json.NewEncoder(w).Encode(st); err != nil {
		s.logf("server: encoding stats: %v", err)
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	start := time.Now()
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()

	fail := func(status int, msg string) {
		s.mu.Lock()
		s.stats.Errors++
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		resp := &protocol.VerifyResponse{Error: msg}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			s.logf("server: encoding error response: %v", err)
		}
	}

	req, err := protocol.DecodeRequest(r.Body)
	if err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	session, err := protocol.ToSession(req)
	if err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("rebuilding session: %v", err))
		return
	}
	decision, err := s.system.Verify(session)
	if err != nil {
		fail(http.StatusUnprocessableEntity, fmt.Sprintf("verifying: %v", err))
		return
	}
	s.mu.Lock()
	if decision.Accepted {
		s.stats.Accepted++
	} else {
		s.stats.Rejected++
	}
	s.mu.Unlock()
	s.logf("server: user=%q decision=%v elapsed=%v", req.ClaimedUser, decision, time.Since(start))

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(protocol.DecisionToResponse(decision)); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

// ListenAndServe starts the server on addr and blocks. It returns the
// bound address through the ready channel (useful for tests binding
// port 0).
func (s *Server) ListenAndServe(addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listening on %s: %w", addr, err)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	return srv.Serve(ln)
}
