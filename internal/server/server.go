// Package server implements the verification backend of the paper's
// prototype (§V): an HTTP server that accepts gzip-compressed session
// uploads on /verify, runs the VoiceGuard pipeline, and returns the
// decision. The paper uses Tornado for parallel request handling; net/http
// provides the same per-request concurrency here. Every request is traced
// (X-Request-ID), timed per pipeline stage, and counted in a telemetry
// registry exposed on /metrics in Prometheus text format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
	"voiceguard/internal/gmm"
	"voiceguard/internal/protocol"
	"voiceguard/internal/telemetry"
)

// Metric names exported on /metrics.
const (
	MetricStageLatency     = "voiceguard_stage_latency_seconds"
	MetricPipelineLatency  = "voiceguard_pipeline_latency_seconds"
	MetricVerifyTotal      = "voiceguard_verify_total"
	MetricVerifyInflight   = "voiceguard_verify_inflight"
	MetricVoiceprintErrors = "voiceguard_voiceprint_errors_total"
	MetricHTTPRequests     = "voiceguard_http_requests_total"
	MetricHTTPDuration     = "voiceguard_http_request_duration_seconds"
	MetricHTTPInflight     = "voiceguard_http_inflight_requests"
	MetricRequestTooLarge  = "voiceguard_request_too_large_total"

	// ASV fast-path series (registered only when the fast path is on).
	MetricASVBatchSize        = "voiceguard_asv_batch_size"
	MetricASVModelCacheEvents = "voiceguard_asv_model_cache_events_total"
	MetricASVModelCacheBytes  = "voiceguard_asv_model_cache_resident_bytes"
)

// Server wraps the pipeline behind HTTP.
type Server struct {
	system         *core.System
	logger         *slog.Logger
	registry       *telemetry.Registry
	pprof          bool
	metricsOff     bool
	decisionsDebug bool

	// Decision tracing: every sampled /verify request records an
	// evidence-carrying span tree into the flight-recorder ring behind
	// /debug/decisions and /debug/trace/{id}.
	recorder    *telemetry.FlightRecorder
	flightSize  int
	sampleTrace func(string) bool

	// Load management: verifyTimeout bounds each /verify pipeline run (0
	// = unbounded, the seed behavior); sem admission-controls concurrent
	// verifies (nil = unbounded).
	verifyTimeout time.Duration
	maxInflight   int
	sem           chan struct{}

	// Evidence export: retainer holds recent decoded requests and
	// decisions for pack building (nil when no evidence surface is
	// enabled — the hot path then pays one nil test); evidenceDir spools
	// rejected-decision packs; evidenceProv is the construction recipe
	// embedded in every pack; spoolWG tracks in-flight spool writes so
	// Shutdown can drain them.
	evidenceDebug bool
	evidenceDir   string
	evidenceSize  int
	evidenceProv  *evidence.Provenance
	retainer      *evidenceRetainer
	spoolWG       sync.WaitGroup

	// ASV fast path: compiled top-C scoring with a speaker-model cache,
	// optionally batching concurrent verifies' UBM passes (batcher is
	// non-nil only with WithASVBatching; Shutdown closes it).
	asvFast        bool
	asvTopC        int
	asvCacheSize   int
	asvBatch       bool
	asvBatchWindow time.Duration
	asvBatchFrames int
	batcher        *gmm.Batcher

	// Verify outcome counters. Total requests is their sum, so the
	// Requests == Accepted+Rejected+Errors+DeadlineExceeded+Shed
	// invariant holds by construction under any interleaving.
	accepted, rejected, errored *telemetry.Counter
	deadlined, shed             *telemetry.Counter
	vpErrDecode, vpErrVoice     *telemetry.Counter
	tooLarge                    map[string]*telemetry.Counter
	verifyInflight              *telemetry.Gauge
	pipelineHist                *telemetry.Histogram
	stageHist                   map[core.Stage]*telemetry.Histogram

	// Time-aware observability (drift.go): the rolling-window set fed
	// from the decision path, the evidence observer binding it, and the
	// gauges derived from it at scrape time. windowCfg lets tests inject
	// a simulated clock; slo/sloGoodUnder declare the burn-rate
	// objectives; driftOff hides the /debug/drift surface only.
	windows           *telemetry.WindowSet
	observer          *core.EvidenceObserver
	windowCfg         *telemetry.WindowConfig
	slo               telemetry.SLOConfig
	sloGoodUnder      time.Duration
	driftOff          bool
	driftAlertPSI     float64 // unit: dimensionless
	stageResources    bool
	driftPSI          map[seriesKey]*telemetry.Gauge
	driftKS           map[seriesKey]*telemetry.Gauge
	burnGauges        map[burnKey]*telemetry.Gauge
	stageCPU          map[core.Stage]*telemetry.Gauge
	goHeap            *telemetry.Gauge
	goGCPause         *telemetry.Gauge
	goGoroutines      *telemetry.Gauge
	allocsPerDecision *telemetry.Gauge

	// ASV serving-state handles kept for /healthz readiness reporting.
	asvCache                   *gmm.ModelCache
	asvCacheHits, asvCacheMiss *telemetry.Counter

	// Streaming listener (stream.go): one TCP connection per
	// verification session, evaluated incrementally so impersonation
	// attacks are rejected before their upload completes.
	streamFrameTimeout time.Duration
	streamWG           sync.WaitGroup
	streamFramesIn     *telemetry.Counter
	streamFramesOut    *telemetry.Counter
	streamBytesIn      *telemetry.Counter
	streamBytesOut     *telemetry.Counter
	streamEarlyExit    map[core.Stage]*telemetry.Counter
	streamTTD          *telemetry.Histogram

	mu             sync.Mutex
	httpSrv        *http.Server
	addr           string
	streamLn       net.Listener
	streamAddr     string
	streamConns    map[net.Conn]struct{}
	streamShutdown bool
}

// Option configures optional server behavior.
type Option func(*Server)

// WithPprof mounts net/http/pprof profiling handlers under
// /debug/pprof/. Off by default: profiling endpoints expose internals
// and cost CPU when scraped.
func WithPprof() Option { return func(s *Server) { s.pprof = true } }

// WithRegistry uses a caller-owned metrics registry instead of a fresh
// one — lets tests and multi-server processes aggregate.
func WithRegistry(r *telemetry.Registry) Option {
	return func(s *Server) { s.registry = r }
}

// WithMetricsEndpoint toggles the GET /metrics exposition endpoint
// (enabled by default). Metrics are still collected when disabled; only
// the scrape surface goes away.
func WithMetricsEndpoint(enabled bool) Option {
	return func(s *Server) { s.metricsOff = !enabled }
}

// WithFlightRecorder sizes the decision flight-recorder ring (default
// telemetry.DefFlightRecorderSize). The last n decision traces stay
// queryable through FlightRecorder and — when WithDecisionEndpoints is
// also set — /debug/decisions and /debug/trace/{id}.
func WithFlightRecorder(n int) Option {
	return func(s *Server) { s.flightSize = n }
}

// WithDecisionEndpoints mounts the flight-recorder debug endpoints
// (/debug/decisions, /debug/decisions.jsonl, /debug/trace/{id}). Off by
// default, like WithPprof: the retained traces carry biometric
// verification verdicts and per-stage evidence, which must not be
// reachable by anyone who can hit the serving listener unless the
// operator opted in. Decisions are still recorded when unset; only the
// HTTP surface goes away (read the ring via FlightRecorder).
func WithDecisionEndpoints() Option {
	return func(s *Server) { s.decisionsDebug = true }
}

// WithVerifyTimeout bounds each /verify pipeline run: a verification
// that has not produced a decision within d is abandoned and answered
// with a 503 JSON error carrying the trace ID, and the deadline_exceeded
// outcome counter increments. 0 (the default) preserves the seed
// behavior — a verify may run as long as it needs. A stalled stage's
// goroutines detach and finish in the background; the connection is
// released at the deadline either way.
func WithVerifyTimeout(d time.Duration) Option {
	return func(s *Server) { s.verifyTimeout = d }
}

// WithMaxInflightVerifies admission-controls /verify: at most n
// verifications run concurrently, and request n+1 is shed immediately
// with 429 + Retry-After instead of queueing unboundedly behind a
// saturated pipeline (each verify fans out across every core, so
// admitting more than a handful multiplies nothing but memory and tail
// latency). 0 (the default) preserves the seed behavior — no limit.
func WithMaxInflightVerifies(n int) Option {
	return func(s *Server) { s.maxInflight = n }
}

// WithTraceSampling records span trees for approximately the given
// fraction of requests, chosen deterministically per trace ID. The
// default samples everything; 0 disables span recording while keeping
// metrics intact.
func WithTraceSampling(ratio float64) Option {
	return func(s *Server) { s.sampleTrace = telemetry.SampleRatio(ratio) }
}

// Stats counts served /verify requests. Fields are int64 so counts
// survive long-lived high-traffic deployments.
type Stats struct {
	// Requests is the total number of /verify calls.
	Requests int64
	// Accepted and Rejected count decisions.
	Accepted, Rejected int64
	// Errors counts malformed or failed requests.
	Errors int64
	// DeadlineExceeded counts verifications abandoned at the server's
	// per-request deadline (HTTP 503).
	DeadlineExceeded int64
	// Shed counts requests refused by admission control (HTTP 429).
	Shed int64
}

// New builds a server around a pipeline. logger may be nil to disable
// request logging.
func New(system *core.System, logger *slog.Logger, opts ...Option) (*Server, error) {
	if system == nil {
		return nil, errors.New("server: nil system")
	}
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{system: system, logger: logger}
	for _, opt := range opts {
		opt(s)
	}
	if s.registry == nil {
		s.registry = telemetry.NewRegistry()
	}
	r := s.registry
	s.accepted = r.Counter(MetricVerifyTotal, telemetry.Labels{"outcome": "accepted"})
	s.rejected = r.Counter(MetricVerifyTotal, telemetry.Labels{"outcome": "rejected"})
	s.errored = r.Counter(MetricVerifyTotal, telemetry.Labels{"outcome": "error"})
	s.deadlined = r.Counter(MetricVerifyTotal, telemetry.Labels{"outcome": "deadline_exceeded"})
	s.shed = r.Counter(MetricVerifyTotal, telemetry.Labels{"outcome": "shed"})
	r.SetHelp(MetricVerifyTotal, "verification attempts by outcome")
	s.verifyInflight = r.Gauge(MetricVerifyInflight, nil)
	r.SetHelp(MetricVerifyInflight, "verifications currently executing the pipeline")
	s.vpErrDecode = r.Counter(MetricVoiceprintErrors, telemetry.Labels{"reason": "decode"})
	s.vpErrVoice = r.Counter(MetricVoiceprintErrors, telemetry.Labels{"reason": "bad_voice"})
	r.SetHelp(MetricVoiceprintErrors, "voiceprint baseline failures by reason")
	s.tooLarge = make(map[string]*telemetry.Counter)
	for _, route := range []string{"verify", "enroll", "voiceprint"} {
		s.tooLarge[route] = r.Counter(MetricRequestTooLarge, telemetry.Labels{"route": route})
	}
	r.SetHelp(MetricRequestTooLarge, "uploads refused for exceeding the raw body cap, by route")
	if s.maxInflight > 0 {
		s.sem = make(chan struct{}, s.maxInflight)
	}
	s.pipelineHist = r.Histogram(MetricPipelineLatency, nil, nil)
	r.SetHelp(MetricPipelineLatency, "total pipeline latency per verification")
	s.stageHist = make(map[core.Stage]*telemetry.Histogram)
	for _, st := range []core.Stage{
		core.StageDistance, core.StageSoundField, core.StageLoudspeaker, core.StageSpeakerID,
	} {
		s.stageHist[st] = r.Histogram(MetricStageLatency, nil, telemetry.Labels{"stage": st.MetricName()})
	}
	r.SetHelp(MetricStageLatency, "per-stage pipeline latency")
	s.initStream()
	s.initObservability()
	if s.asvFast || s.asvBatch {
		if err := s.enableFastASV(); err != nil {
			return nil, err
		}
	}
	if s.evidenceDebug || s.evidenceDir != "" {
		s.retainer = newEvidenceRetainer(s.evidenceSize)
	}
	if s.evidenceDir != "" {
		if err := os.MkdirAll(s.evidenceDir, 0o700); err != nil {
			return nil, fmt.Errorf("server: creating evidence dir: %w", err)
		}
	}
	s.recorder = telemetry.NewFlightRecorder(s.flightSize)
	// The pipeline records traces through the system's tracer; attach one
	// wired to this server's ring unless the caller installed their own.
	if system.Tracer == nil {
		system.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
			Sample:   s.sampleTrace,
			Recorder: s.recorder,
		})
	} else if rec := system.Tracer.Recorder(); rec != nil {
		s.recorder = rec
	} else {
		// A caller-installed tracer without a recorder would leave the
		// debug endpoints permanently empty; give it the server's ring so
		// finished traces land where /debug/decisions reads them.
		system.Tracer.AttachRecorder(s.recorder)
	}
	return s, nil
}

// FlightRecorder returns the ring backing the /debug decision endpoints.
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.recorder }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *telemetry.Registry { return s.registry }

// Handler returns the HTTP routing for the server, wrapped in the
// tracing/metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/verify", s.handleVerify)
	mux.HandleFunc("/voiceprint", s.handleVoiceprint)
	mux.HandleFunc("/enroll", s.handleEnroll)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	if s.decisionsDebug {
		mux.HandleFunc(DecisionsRoute, s.handleDecisions)
		mux.HandleFunc(DecisionsJSONLRoute, s.handleDecisionsJSONL)
		mux.HandleFunc(TraceRoute, s.handleTrace)
	}
	if s.evidenceDebug {
		mux.HandleFunc(EvidenceRoute, s.handleEvidence)
	}
	if !s.driftOff {
		mux.HandleFunc(DriftRoute, s.handleDrift)
		mux.HandleFunc(DriftPinRoute, s.handleDriftPin)
	}
	if !s.metricsOff {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// handleEnroll registers a user with the ASV stage. It requires the
// server to have an identity back-end attached.
func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	traceID := RequestID(r.Context())
	respond := func(status int, resp *protocol.EnrollResponse) {
		resp.TraceID = traceID
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			s.logger.Error("encoding enroll response", "err", err, "trace_id", traceID)
		}
	}
	if r.Method != http.MethodPost {
		respond(http.StatusMethodNotAllowed, &protocol.EnrollResponse{Error: "POST required"})
		return
	}
	if s.system.Identity == nil {
		respond(http.StatusNotImplemented, &protocol.EnrollResponse{Error: "no ASV stage attached"})
		return
	}
	capBody(w, r)
	req, err := protocol.DecodeEnroll(r.Body)
	if err != nil {
		if requestTooLarge(err) {
			s.tooLarge["enroll"].Inc()
			respond(http.StatusRequestEntityTooLarge, &protocol.EnrollResponse{Error: err.Error()})
			return
		}
		respond(http.StatusBadRequest, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	sessions, err := protocol.SessionsFromEnroll(req)
	if err != nil {
		respond(http.StatusBadRequest, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	if err := s.system.Identity.Enroll(req.User, sessions); err != nil {
		respond(http.StatusUnprocessableEntity, &protocol.EnrollResponse{Error: err.Error()})
		return
	}
	s.logger.Info("enrolled user", "user", req.User, "sessions", len(sessions),
		"trace_id", RequestID(r.Context()))
	respond(http.StatusOK, &protocol.EnrollResponse{OK: true})
}

// handleVoiceprint serves the voice-only baseline scheme (Fig. 15): it
// runs only the ASV stage when one is attached, and accepts otherwise
// (transport-path measurement).
func (s *Server) handleVoiceprint(w http.ResponseWriter, r *http.Request) {
	traceID := RequestID(r.Context())
	if r.Method != http.MethodPost {
		s.writeJSONError(w, traceID, http.StatusMethodNotAllowed, "POST required")
		return
	}
	fail := func(status int, counter *telemetry.Counter, msg string) {
		counter.Inc()
		s.logger.Warn("voiceprint failed", "trace_id", traceID, "status", status, "err", msg)
		s.writeJSONError(w, traceID, status, msg)
	}
	capBody(w, r)
	req, err := protocol.DecodeVoiceprint(r.Body)
	if err != nil {
		if requestTooLarge(err) {
			s.tooLarge["voiceprint"].Inc()
			fail(http.StatusRequestEntityTooLarge, s.vpErrDecode, fmt.Sprintf("decoding request: %v", err))
			return
		}
		fail(http.StatusBadRequest, s.vpErrDecode, fmt.Sprintf("decoding request: %v", err))
		return
	}
	resp := &protocol.VerifyResponse{Accepted: true, TraceID: traceID}
	if s.system.Identity != nil {
		voice, err := protocol.VoiceFromRequest(req)
		if err != nil {
			fail(http.StatusBadRequest, s.vpErrVoice, fmt.Sprintf("rebuilding voice: %v", err))
			return
		}
		start := time.Now()
		res := s.system.Identity.Verify(req.ClaimedUser, voice)
		elapsed := time.Since(start)
		s.stageHist[core.StageSpeakerID].ObserveDuration(elapsed)
		resp.Accepted = res.Pass
		if !res.Pass {
			resp.FailedStage = res.Stage.String()
		}
		resp.Stages = []protocol.StageJSON{{
			Stage: res.Stage.String(), Pass: res.Pass, Score: res.Score, Detail: res.Detail,
			ElapsedUS: elapsed.Microseconds(),
		}}
		resp.ElapsedUS = elapsed.Microseconds()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logger.Error("encoding voiceprint response", "err", err, "trace_id", RequestID(r.Context()))
	}
}

// Stats returns a snapshot of the request counters. Requests is derived
// as the sum of the outcome counters, so the Requests ==
// Accepted+Rejected+Errors invariant cannot be violated by interleaved
// updates.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:         s.accepted.Value(),
		Rejected:         s.rejected.Value(),
		Errors:           s.errored.Value(),
		DeadlineExceeded: s.deadlined.Value(),
		Shed:             s.shed.Value(),
	}
	st.Requests = st.Accepted + st.Rejected + st.Errors + st.DeadlineExceeded + st.Shed
	return st
}

// asvHealth reports the fast-ASV serving state on /healthz: model-cache
// residency and traffic, plus batcher queue depth when batching is on.
type asvHealth struct {
	// CacheEntries and CacheResidentBytes describe the compiled
	// speaker-model LRU.
	CacheEntries       int   `json:"cache_entries"`
	CacheResidentBytes int64 `json:"cache_resident_bytes"`
	// CacheHits/CacheMisses are cumulative; CacheHitRatio is their
	// derived fraction (0 before any traffic).
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"` // unit: dimensionless
	// Batching reports whether cross-request UBM batching is on;
	// QueueDepth/PendingFrames are its current coalescing state.
	Batching      bool `json:"batching"`
	QueueDepth    int  `json:"queue_depth,omitempty"`
	PendingFrames int  `json:"pending_frames,omitempty"`
}

// healthResponse is the /healthz readiness document.
type healthResponse struct {
	// Status is "ok" once the pipeline is constructed.
	Status string `json:"status"`
	// Stages reports which paper stages are configured on this server.
	Stages map[string]bool `json:"stages"`
	// ASV reports the fast-path serving state (absent when the fast ASV
	// path is off).
	ASV *asvHealth `json:"asv,omitempty"`
}

// asvHealthSnapshot builds the /healthz ASV section (nil when the fast
// path is off).
func (s *Server) asvHealthSnapshot() *asvHealth {
	if s.asvCache == nil {
		return nil
	}
	h := &asvHealth{
		CacheEntries:       s.asvCache.Len(),
		CacheResidentBytes: s.asvCache.ResidentBytes(),
		CacheHits:          s.asvCacheHits.Value(),
		CacheMisses:        s.asvCacheMiss.Value(),
		Batching:           s.batcher != nil,
	}
	if total := h.CacheHits + h.CacheMisses; total > 0 {
		h.CacheHitRatio = float64(h.CacheHits) / float64(total)
	}
	if s.batcher != nil {
		h.QueueDepth = s.batcher.QueueDepth()
		h.PendingFrames = s.batcher.PendingFrames()
	}
	return h
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	resp := healthResponse{
		Status: "ok",
		Stages: map[string]bool{
			core.StageDistance.MetricName():    s.system.Distance != nil,
			core.StageSoundField.MetricName():  s.system.Field != nil,
			core.StageLoudspeaker.MetricName(): s.system.Speaker != nil,
			core.StageSpeakerID.MetricName():   s.system.Identity != nil,
		},
		ASV: s.asvHealthSnapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logger.Error("encoding health response", "err", err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		s.logger.Error("encoding stats", "err", err)
	}
}

// wantsOpenMetrics reports whether the scraper's Accept header
// negotiates the OpenMetrics exposition — the only format in which
// histogram exemplars are legal. Anything else (including no header)
// gets the classic exemplar-free text format, which every Prometheus
// parser accepts.
func wantsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mediaType, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mediaType) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	// Window-derived gauges (drift, burn rates, process state) are
	// recomputed on scrape, so the serving path never pays for them.
	s.refreshObservability()
	var err error
	if wantsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
		err = s.registry.ExposeOpenMetrics(w)
	} else {
		w.Header().Set("Content-Type", telemetry.TextContentType)
		err = s.registry.Expose(w)
	}
	if err != nil {
		s.logger.Error("writing metrics", "err", err)
	}
}

// capBody bounds the raw upload before any gzip decode. The protocol
// decoders cap the *decompressed* payload, but without this an attacker
// could stream an unbounded raw body into the gzip reader; MaxBytesReader
// cuts the connection off at the cap and poisons further reads with
// *http.MaxBytesError.
func capBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, protocol.MaxPayloadBytes)
}

// requestTooLarge reports whether a decode failure means the upload blew
// either size cap — the raw-body guard or the decoded-payload limit —
// and should answer 413 rather than a generic 400.
func requestTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe) || errors.Is(err, protocol.ErrTooLarge)
}

// writeJSONError answers a failed POST request with the JSON error
// envelope every /verify-family failure uses — the error text plus the
// trace ID, so even a refused request correlates with the server's logs.
func (s *Server) writeJSONError(w http.ResponseWriter, traceID string, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	resp := &protocol.VerifyResponse{Error: msg, TraceID: traceID}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.logger.Error("encoding error response", "err", err, "trace_id", traceID)
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	traceID := RequestID(r.Context())
	if r.Method != http.MethodPost {
		s.writeJSONError(w, traceID, http.StatusMethodNotAllowed, "POST required")
		return
	}
	start := time.Now()

	fail := func(status int, msg string) {
		s.errored.Inc()
		// Error outcomes report their real latency: a zero here would
		// mislabel where time went the moment any window consumer starts
		// attributing error time (the counter windows already key off it).
		s.observeOutcome(telemetry.OutcomeError, time.Since(start))
		s.logger.Warn("verify failed", "trace_id", traceID, "status", status, "err", msg)
		s.writeJSONError(w, traceID, status, msg)
	}

	// Admission control runs before the expensive body decode: a shed
	// request costs the server nothing but this reply, which is the whole
	// point of shedding.
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Inc()
			s.observeOutcome(telemetry.OutcomeShed, 0)
			s.logger.Warn("verify shed", "trace_id", traceID, "max_inflight", s.maxInflight)
			w.Header().Set("Retry-After", "1")
			s.writeJSONError(w, traceID, http.StatusTooManyRequests,
				fmt.Sprintf("overloaded: %d verifications already in flight", s.maxInflight))
			return
		}
	}
	s.verifyInflight.Add(1)
	defer s.verifyInflight.Add(-1)

	capBody(w, r)
	req, err := protocol.DecodeRequest(r.Body)
	if err != nil {
		if requestTooLarge(err) {
			s.tooLarge["verify"].Inc()
			fail(http.StatusRequestEntityTooLarge, fmt.Sprintf("decoding request: %v", err))
			return
		}
		fail(http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	session, err := protocol.ToSession(req)
	if err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("rebuilding session: %v", err))
		return
	}
	// The pipeline runs under the request's context — cancelled when the
	// client disconnects — optionally tightened by the configured
	// per-request deadline.
	ctx := r.Context()
	if s.verifyTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.verifyTimeout)
		defer cancel()
	}
	decision, err := s.system.VerifyContext(ctx, traceID, session)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// An honest timeout, not a verdict: 503 with the trace ID so
			// the client can retry and the operator can pull the abandoned
			// trace from the flight recorder.
			s.deadlined.Inc()
			s.observeOutcome(telemetry.OutcomeDeadlineExceeded, time.Since(start))
			s.logger.Warn("verify deadline exceeded", "trace_id", traceID,
				"timeout", s.verifyTimeout, "err", err)
			s.writeJSONError(w, traceID, http.StatusServiceUnavailable,
				fmt.Sprintf("verification abandoned: %v", err))
			return
		}
		fail(http.StatusUnprocessableEntity, fmt.Sprintf("verifying: %v", err))
		return
	}
	if decision.Accepted {
		s.accepted.Inc()
		s.observeOutcome(telemetry.OutcomeAccepted, decision.Elapsed)
	} else {
		s.rejected.Inc()
		s.observeOutcome(telemetry.OutcomeRejected, decision.Elapsed)
	}
	s.observeDecision(&decision)
	if s.evidenceEnabled() {
		s.retainEvidence(traceID, req, decision)
	}
	s.pipelineHist.ObserveDurationExemplar(decision.Elapsed, decision.TraceID)
	stageAttrs := make([]any, 0, 2*len(decision.Stages)+8)
	stageAttrs = append(stageAttrs,
		"trace_id", decision.TraceID,
		"user", req.ClaimedUser,
		"decision", decision.String(),
		"elapsed", time.Since(start),
	)
	for _, st := range decision.Stages {
		if h, ok := s.stageHist[st.Stage]; ok {
			h.ObserveDurationExemplar(st.Elapsed, decision.TraceID)
		}
		stageAttrs = append(stageAttrs, "stage_"+st.Stage.MetricName(), st.Elapsed)
	}
	s.logger.Info("verify", stageAttrs...)

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(protocol.DecisionToResponse(decision)); err != nil {
		s.logger.Error("encoding response", "err", err, "trace_id", traceID)
	}
}

// Serve accepts connections on ln until Shutdown is called (or the
// listener fails). It returns http.ErrServerClosed after a clean
// shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	return srv.Serve(ln)
}

// Shutdown gracefully stops a server started with Serve or
// ListenAndServe: the listener closes immediately, in-flight
// verifications drain until ctx expires, and pending evidence-pack
// spools finish so no rejected decision loses its pack to the exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.shutdownStream(ctx)
	s.spoolWG.Wait()
	if s.batcher != nil {
		// After the drain: pending batches flush, and any straggler
		// submission scores directly instead of blocking.
		s.batcher.Close()
	}
	return err
}

// Addr returns the address ListenAndServe bound, or "" before the
// listener exists — the poll-friendly alternative to the ready channel.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// ListenAndServe starts the server on addr and blocks until Shutdown or
// listener failure. It reports the bound address through the ready
// channel (useful for tests binding port 0) with a non-blocking send: a
// caller that abandoned the channel forfeits the notification, it does
// not deadlock the serving goroutine before Serve ever runs. Callers
// that might miss the send poll Addr instead.
func (s *Server) ListenAndServe(addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listening on %s: %w", addr, err)
	}
	bound := ln.Addr().String()
	s.mu.Lock()
	s.addr = bound
	s.mu.Unlock()
	if ready != nil {
		select {
		case ready <- bound:
		default:
		}
	}
	return s.Serve(ln)
}
