package server

// HTTP middleware: request-ID assignment/propagation and per-route
// latency/status instrumentation for every endpoint the server exposes.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"voiceguard/internal/telemetry"
)

// ctxKey is the private context-key type for values this package stores
// on requests.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDHeader is the header carrying the trace ID. Clients may set
// it; the server assigns one when absent and always echoes it on the
// response.
const RequestIDHeader = "X-Request-ID"

// RequestID returns the trace ID the middleware attached to ctx, or ""
// outside an instrumented request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// maxRequestIDLen caps accepted client-supplied IDs so a hostile header
// cannot bloat logs and responses.
const maxRequestIDLen = 64

// statusRecorder captures the response code for the status counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// knownRoutes bounds the route-label cardinality: anything outside the
// fixed API surface is counted as "other" so a URL-scanning client
// cannot grow the registry without bound.
var knownRoutes = map[string]bool{
	"/verify": true, "/voiceprint": true, "/enroll": true,
	"/healthz": true, "/stats": true, "/metrics": true,
	DecisionsRoute: true, DecisionsJSONLRoute: true,
}

func routeLabel(path string) string {
	if knownRoutes[path] {
		return path
	}
	if len(path) >= len("/debug/pprof/") && path[:len("/debug/pprof/")] == "/debug/pprof/" {
		return "/debug/pprof/"
	}
	if len(path) >= len(TraceRoute) && path[:len(TraceRoute)] == TraceRoute {
		return TraceRoute
	}
	return "other"
}

// instrument wraps next with trace-ID propagation and per-route metrics.
func (s *Server) instrument(next http.Handler) http.Handler {
	inflight := s.registry.Gauge(MetricHTTPInflight, nil)
	s.registry.SetHelp(MetricHTTPInflight, "requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" || len(id) > maxRequestIDLen {
			id = telemetry.NewTraceID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, id))

		route := routeLabel(r.URL.Path)
		inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		inflight.Add(-1)

		s.registry.Histogram(MetricHTTPDuration, nil, telemetry.Labels{"route": route}).
			ObserveDuration(elapsed)
		s.registry.Counter(MetricHTTPRequests, telemetry.Labels{
			"route": route, "code": strconv.Itoa(rec.status),
		}).Inc()
	})
}
