package server

// Pagination tests for the flight-recorder endpoints: ?limit=N must keep
// the newest N traces while preserving each form's documented ordering
// (JSON newest-first, JSONL oldest-first).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"voiceguard/internal/core"
	"voiceguard/internal/telemetry"
)

func TestSnapshotRecent(t *testing.T) {
	rec := telemetry.NewFlightRecorder(8)
	for i := 0; i < 5; i++ {
		rec.Record(&telemetry.TraceRecord{TraceID: fmt.Sprintf("t-%d", i)})
	}
	ids := func(rs []*telemetry.TraceRecord) []string {
		var out []string
		for _, r := range rs {
			out = append(out, r.TraceID)
		}
		return out
	}
	got := ids(rec.SnapshotRecent(2))
	if len(got) != 2 || got[0] != "t-3" || got[1] != "t-4" {
		t.Fatalf("SnapshotRecent(2) = %v, want newest two oldest-first [t-3 t-4]", got)
	}
	for _, n := range []int{0, -1, 5, 100} {
		if got := ids(rec.SnapshotRecent(n)); len(got) != 5 {
			t.Fatalf("SnapshotRecent(%d) = %v, want all 5", n, got)
		}
	}
}

// fillRecorder seeds the server's ring with n synthetic traces whose IDs
// encode their recording order.
func fillRecorder(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		srv.FlightRecorder().Record(&telemetry.TraceRecord{
			TraceID:  fmt.Sprintf("t-%d", i),
			Start:    time.Unix(int64(1700000000+i), 0).UTC(),
			Accepted: true,
		})
	}
}

func TestDecisionsLimitNewestFirst(t *testing.T) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, nil, WithFlightRecorder(16), WithDecisionEndpoints())
	if err != nil {
		t.Fatal(err)
	}
	fillRecorder(t, srv, 6)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// JSON form: newest first, limit keeps the newest N.
	resp, body := get(ts.URL + DecisionsRoute + "?limit=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var summaries []telemetry.TraceSummary
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 3 {
		t.Fatalf("limit=3 returned %d summaries", len(summaries))
	}
	for i, want := range []string{"t-5", "t-4", "t-3"} {
		if summaries[i].TraceID != want {
			t.Fatalf("summaries[%d] = %s, want %s (newest first)", i, summaries[i].TraceID, want)
		}
	}

	// JSONL form: newest N, still oldest-first.
	resp, body = get(ts.URL + DecisionsJSONLRoute + "?limit=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	records, err := telemetry.ReadJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].TraceID != "t-4" || records[1].TraceID != "t-5" {
		got := make([]string, len(records))
		for i, r := range records {
			got[i] = r.TraceID
		}
		t.Fatalf("JSONL limit=2 = %v, want [t-4 t-5] (newest two, oldest first)", got)
	}

	// No limit: everything.
	_, body = get(ts.URL + DecisionsRoute)
	if err := json.Unmarshal(body, &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 6 {
		t.Fatalf("unbounded listing returned %d summaries, want 6", len(summaries))
	}

	// Malformed limits are client errors on both forms.
	for _, bad := range []string{"?limit=abc", "?limit=-1", "?limit=1.5"} {
		for _, route := range []string{DecisionsRoute, DecisionsJSONLRoute} {
			resp, _ := get(ts.URL + route + bad)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s%s: status %d, want 400", route, bad, resp.StatusCode)
			}
		}
	}
}
