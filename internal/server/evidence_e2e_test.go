package server

// End-to-end evidence round trip: a live server verifies a genuine and a
// replay-attack session, the client downloads each decision's evidence
// pack, the packs verify offline, a single tampered byte breaks
// verification, and replaying a pack through a system rebuilt purely from
// its embedded provenance reproduces the verdicts — identity LLR included
// — bit for bit. Run under -race in CI, this covers the whole evidence
// spine: retainer, pack builder, HTTP handler, client download, digest
// chain, rebuild and replay.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/evidence"
	"voiceguard/internal/evidence/rebuild"
)

// evidenceProvenance is the construction recipe the e2e tests serve with
// and replay from.
func evidenceProvenance(seed int64) evidence.Provenance {
	return evidence.Provenance{
		Generator: "test",
		FieldSeed: seed,
		ASV: &evidence.ASVProvenance{
			Seed: seed, Roster: 6, Sessions: 2, Utterances: 2, Digits: 6,
			Enroll: []evidence.EnrollProvenance{
				{User: "victim", Seed: seed, Passphrase: "472913", Utterances: 4},
			},
		},
	}
}

// evidenceTestServer builds a full pipeline (identity stage included)
// from the given provenance and serves it with evidence export enabled.
func evidenceTestServer(t *testing.T, prov evidence.Provenance, extra ...Option) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := rebuild.System(prov)
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]Option{
		WithDecisionEndpoints(),
		WithEvidenceEndpoint(),
		WithEvidenceProvenance(prov),
	}, extra...)
	srv, err := New(sys, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// evidenceSessions builds one genuine and one replay-attack session for
// the provenance's victim.
func evidenceSessions(t *testing.T, prov evidence.Provenance) (genuine, replayed *core.SessionData) {
	t.Helper()
	victim := rebuild.Profile("victim", prov.FieldSeed)
	sc := attack.Scenario{Distance: 0.06, ClaimedUser: "victim", Seed: prov.FieldSeed}
	var err error
	genuine, err = attack.Genuine(victim, sc)
	if err != nil {
		t.Fatal(err)
	}
	recording, err := attack.Record(victim, "472913", prov.FieldSeed)
	if err != nil {
		t.Fatal(err)
	}
	replaySc := sc
	replaySc.Seed = prov.FieldSeed + 1
	replayed, err = attack.Replay(recording, device.Catalog()[0], replaySc)
	if err != nil {
		t.Fatal(err)
	}
	return genuine, replayed
}

func TestEvidenceRoundTripEndToEnd(t *testing.T) {
	prov := evidenceProvenance(3)
	_, ts := evidenceTestServer(t, prov)
	genuine, replayed := evidenceSessions(t, prov)
	cli := client.New(ts.URL)
	ctx := context.Background()

	genRes, err := cli.VerifyContext(ctx, genuine)
	if err != nil {
		t.Fatal(err)
	}
	if !genRes.Response.Accepted {
		t.Fatalf("genuine rejected: %+v", genRes.Response)
	}
	repRes, err := cli.VerifyContext(ctx, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if repRes.Response.Accepted {
		t.Fatalf("replay attack accepted: %+v", repRes.Response)
	}

	// Download both packs through the client and verify them offline.
	packs := map[string]*evidence.Pack{}
	for _, traceID := range []string{genRes.TraceID, repRes.TraceID} {
		data, err := cli.EvidencePack(ctx, traceID)
		if err != nil {
			t.Fatalf("downloading pack %s: %v", traceID, err)
		}
		p, err := evidence.ReadBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		if problems := evidence.Verify(p); len(problems) != 0 {
			for _, pr := range problems {
				t.Errorf("pack %s problem: %s", traceID, pr)
			}
			t.Fatalf("downloaded pack %s failed verification", traceID)
		}
		packs[traceID] = p
	}

	// Tamper one byte of decisions.jsonl and rebuild the zip around the
	// now-stale manifest: verification must fail.
	tampered := packs[genRes.TraceID]
	members := map[string][]byte{}
	for name, raw := range tampered.Raw {
		if name == evidence.ManifestMember {
			continue
		}
		members[name] = append([]byte(nil), raw...)
	}
	dec := members[evidence.DecisionsMember]
	if len(dec) == 0 {
		t.Fatal("pack has no decisions member")
	}
	dec[len(dec)/2] ^= 0x01
	var buf bytes.Buffer
	if err := evidence.WriteZipMembers(&buf, tampered.Manifest, members); err != nil {
		t.Fatal(err)
	}
	reread, err := evidence.ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if problems := evidence.Verify(reread); len(problems) == 0 {
		t.Fatal("single-byte tamper of decisions.jsonl went undetected")
	}

	// Replay the untampered genuine pack on a system rebuilt purely from
	// its provenance: verdict and identity LLR must reproduce bit for bit.
	p := packs[genRes.TraceID]
	sys, err := rebuild.SystemFromPack(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuild.CheckModels(p, sys); err != nil {
		t.Fatal(err)
	}
	results, err := rebuild.Replay(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("replayed %d sessions, want 1", len(results))
	}
	r := results[0]
	if !r.Match {
		t.Fatalf("replay diverged: %v", r.Diffs)
	}
	packed, ok := p.Decision(genRes.TraceID)
	if !ok || !packed.Accepted {
		t.Fatalf("packed genuine decision: ok=%v %+v", ok, packed)
	}
	var packedLLR, replayedLLR string
	for _, st := range packed.Stages {
		if st.Stage == "identity" {
			packedLLR = st.ScoreBits
		}
	}
	for _, st := range r.Replayed.Stages {
		if st.Stage == "identity" {
			replayedLLR = st.ScoreBits
		}
	}
	if packedLLR == "" || packedLLR != replayedLLR {
		t.Fatalf("identity LLR bits: packed %q, replayed %q", packedLLR, replayedLLR)
	}

	// The rejected decision's pack replays identically too.
	pr := packs[repRes.TraceID]
	sys2, err := rebuild.SystemFromPack(pr)
	if err != nil {
		t.Fatal(err)
	}
	results2, err := rebuild.Replay(pr, sys2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results2) != 1 || !results2[0].Match {
		t.Fatalf("rejected-decision replay diverged: %+v", results2)
	}
}

// TestEvidenceSpoolOnReject covers the -evidence-dir path: a rejected
// decision spools a verifiable pack to disk; an accepted one does not.
func TestEvidenceSpoolOnReject(t *testing.T) {
	dir := t.TempDir()
	prov := evidence.Provenance{Generator: "test", FieldSeed: 4}
	srv, ts := evidenceTestServer(t, prov, WithEvidenceDir(dir))
	genuine, replayed := evidenceSessions(t, prov)
	cli := client.New(ts.URL)

	genRes, err := cli.Verify(genuine)
	if err != nil {
		t.Fatal(err)
	}
	repRes, err := cli.Verify(replayed)
	if err != nil {
		t.Fatal(err)
	}
	if genRes.Response.Accepted == repRes.Response.Accepted {
		t.Fatalf("want one accept and one reject, got %v/%v",
			genRes.Response.Accepted, repRes.Response.Accepted)
	}

	// Shutdown drains the async spool goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("spool dir holds %v, want exactly the rejected decision's pack", names)
	}
	p, err := evidence.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if problems := evidence.Verify(p); len(problems) != 0 {
		t.Fatalf("spooled pack fails verification: %v", problems)
	}
	d, ok := p.Decision(repRes.TraceID)
	if !ok || d.Accepted {
		t.Fatalf("spooled pack decision: ok=%v %+v", ok, d)
	}
}
