package server

// End-to-end coverage of the batched ASV serving path: concurrent
// verifies coalesce into shared UBM passes without changing a single
// score bit, and the batching/cache metric families land on /metrics in
// strict-parser-conformant shape.

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/client"
	"voiceguard/internal/core"
	"voiceguard/internal/speech"
)

// batchFixtureSeed drives every random choice in the batched-ASV
// fixtures so two independently built servers hold bit-identical models.
const batchFixtureSeed = 940

// trainBatchVerifier trains a deterministic GMM-UBM verifier (16
// components, so the default shortlist truly truncates) and enrolls one
// victim; calling it twice yields bit-identical state.
func trainBatchVerifier(t *testing.T) (*core.SpeakerVerifier, speech.Profile) {
	t.Helper()
	roster := speech.NewRoster(4, batchFixtureSeed)
	utts, err := roster.Generate(speech.CorpusConfig{Sessions: 2, UtterancesPerSession: 2, Digits: 6})
	if err != nil {
		t.Fatal(err)
	}
	bg := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			bg[spk] = append(bg[spk], perSession[s])
		}
	}
	verifier, err := core.TrainSpeakerVerifier(bg, core.SpeakerVerifierConfig{
		Components: 16, Seed: batchFixtureSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(batchFixtureSeed + 1))
	victim := speech.RandomProfile("carol", rng)
	synth, err := speech.NewSynthesizer(victim, rng)
	if err != nil {
		t.Fatal(err)
	}
	var session []*audio.Signal
	for k := 0; k < 3; k++ {
		utt, err := synth.SayDigits("271828")
		if err != nil {
			t.Fatal(err)
		}
		session = append(session, utt)
	}
	if err := verifier.Enroll("carol", [][]*audio.Signal{session}); err != nil {
		t.Fatal(err)
	}
	verifier.Threshold = -100 // stage 4 diagnostics matter here, not verdicts
	return verifier, victim
}

// fastServer wraps a freshly trained verifier in a server built with the
// given fast-path options.
func fastServer(t *testing.T, opts ...Option) (*httptest.Server, speech.Profile) {
	t.Helper()
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	verifier, victim := trainBatchVerifier(t)
	sys.AttachIdentity(verifier)
	srv, err := New(sys, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts, victim
}

// speakerIDScore digs the identity-stage score out of a verify response.
func speakerIDScore(t *testing.T, res *client.Result) float64 {
	t.Helper()
	for _, st := range res.Response.Stages {
		if strings.Contains(st.Stage, "speaker") {
			return st.Score
		}
	}
	t.Fatalf("no speaker-id stage in response: %+v", res.Response.Stages)
	return 0
}

func TestBatchedVerifyMatchesUnbatchedBitExact(t *testing.T) {
	batched, victim := fastServer(t, WithASVBatching(0, 0))
	plain, _ := fastServer(t, WithASVFastPath(0))

	genuine, err := attack.Genuine(victim, attack.Scenario{
		ClaimedUser: "carol", Passphrase: "271828", Seed: batchFixtureSeed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := client.New(plain.URL).Verify(genuine)
	if err != nil {
		t.Fatal(err)
	}
	want := speakerIDScore(t, plainRes)

	// Concurrent verifies against the batched server: frames from
	// different requests coalesce into shared UBM passes, and every
	// response must still carry the exact same stage-4 score — per-frame
	// results are independent of batch grouping.
	const concurrency = 8
	scores := make([]float64, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	c := client.New(batched.URL)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Verify(genuine)
			if err != nil {
				errs[i] = err
				return
			}
			scores[i] = speakerIDScore(t, res)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrency; i++ {
		if errs[i] != nil {
			t.Fatalf("batched verify %d: %v", i, errs[i])
		}
		if scores[i] != want {
			t.Errorf("batched verify %d score = %v, want unbatched %v (bit-exact)", i, scores[i], want)
		}
	}

	// Serving metrics: every flush observes the batch-size histogram, and
	// eight scorings of one enrolled model are one compile plus cache hits.
	m := scrapeMetrics(t, batched.URL)
	if n := m[MetricASVBatchSize+"_count"]; n < 1 {
		t.Errorf("batch-size histogram count = %v, want ≥ 1", n)
	}
	if n := m[MetricASVBatchSize+`_bucket{le="+Inf"}`]; n < 1 {
		t.Errorf("batch-size +Inf bucket = %v, want ≥ 1", n)
	}
	if miss := m[MetricASVModelCacheEvents+`{event="miss"}`]; miss != 1 {
		t.Errorf("model-cache misses = %v, want exactly 1 (one enrolled model)", miss)
	}
	if hits := m[MetricASVModelCacheEvents+`{event="hit"}`]; hits != concurrency-1 {
		t.Errorf("model-cache hits = %v, want %d", hits, concurrency-1)
	}
	if b := m[MetricASVModelCacheBytes]; b <= 0 {
		t.Errorf("model-cache resident bytes = %v, want > 0", b)
	}
}

// TestASVMetricsConformance pins the serving-path metric families —
// batch-size histogram, model-cache counters, resident-bytes gauge — to
// the strict Prometheus text-format contract alongside the rest of the
// exposition.
func TestASVMetricsConformance(t *testing.T) {
	ts, victim := fastServer(t, WithASVBatching(0, 0), WithASVModelCache(4))
	genuine, err := attack.Genuine(victim, attack.Scenario{
		ClaimedUser: "carol", Passphrase: "271828", Seed: batchFixtureSeed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.New(ts.URL).Verify(genuine); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	series := parseExposition(t, resp.Body, false)
	found := map[string]bool{}
	for _, s := range series {
		found[s.name] = true
	}
	for _, name := range []string{
		MetricASVBatchSize + "_count",
		MetricASVBatchSize + "_sum",
		MetricASVBatchSize + "_bucket",
		MetricASVModelCacheEvents,
		MetricASVModelCacheBytes,
	} {
		if !found[name] {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
}
