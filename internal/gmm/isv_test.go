package gmm

import (
	"math"
	"math/rand"
	"testing"
)

// sessionData builds a population with the structure ISV assumes: frames
// cluster around base centers shared by all speakers (phoneme-like), each
// speaker adds a stable identity offset, and each session adds an offset
// along a common channel direction. The UBM learns the shared centers;
// MAP supervectors then carry identity + session, and ISV removes the
// session part.
func sessionData(nSpeakers, nSessions, framesPer int, rng *rand.Rand) (pool [][]float64, sessions map[string][][][]float64, ids [][]float64) {
	const dim = 4
	bases := [][]float64{{0, 0, 0, 0}, {6, 0, 0, 0}, {0, 6, 0, 0}, {0, 0, 6, 0}}
	sessionDir := []float64{0.5, -0.5, 0.5, 0.5} // common channel direction
	sessions = make(map[string][][][]float64)
	for s := 0; s < nSpeakers; s++ {
		id := make([]float64, dim)
		for d := range id {
			id[d] = 1.2 * rng.NormFloat64()
		}
		ids = append(ids, id)
		name := string(rune('A' + s))
		for j := 0; j < nSessions; j++ {
			off := 1.5 * rng.NormFloat64()
			var frames [][]float64
			for f := 0; f < framesPer; f++ {
				base := bases[rng.Intn(len(bases))]
				row := make([]float64, dim)
				for d := range row {
					row[d] = base[d] + id[d] + off*sessionDir[d] + 0.4*rng.NormFloat64()
				}
				frames = append(frames, row)
				pool = append(pool, row)
			}
			sessions[name] = append(sessions[name], frames)
		}
	}
	return pool, sessions, ids
}

func trainTestISV(t *testing.T, rng *rand.Rand) (*ISV, map[string][][][]float64) {
	t.Helper()
	pool, sessions, _ := sessionData(5, 4, 80, rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	isv, err := TrainISV(ubm, sessions, ISVConfig{Rank: 3, Relevance: 4})
	if err != nil {
		t.Fatal(err)
	}
	return isv, sessions
}

func TestISVSeparatesSpeakers(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	isv, sessions := trainTestISV(t, rng)

	// Enroll speaker A on its first two sessions, test on its later
	// sessions and on speaker B.
	spk, err := isv.Enroll(sessions["A"][:2])
	if err != nil {
		t.Fatal(err)
	}
	genuine, err := spk.Score(sessions["A"][3])
	if err != nil {
		t.Fatal(err)
	}
	impostor, err := spk.Score(sessions["B"][3])
	if err != nil {
		t.Fatal(err)
	}
	if genuine <= impostor {
		t.Errorf("genuine %v <= impostor %v", genuine, impostor)
	}
	if genuine < 0.3 {
		t.Errorf("genuine cosine score %v unexpectedly low", genuine)
	}
}

func TestISVCompensationHelpsCrossSession(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pool, sessions, _ := sessionData(6, 4, 80, rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 8, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	isv, err := TrainISV(ubm, sessions, ISVConfig{Rank: 2, Relevance: 4})
	if err != nil {
		t.Fatal(err)
	}
	noComp := &ISV{ubm: ubm, relevance: 4} // rank-0: no compensation

	// Compensation's core benefit: genuine cross-session scores improve
	// because the enrollment reference no longer carries session noise
	// and the test session is re-injected at scoring time.
	names := []string{"A", "B", "C", "D", "E", "F"}
	stats := func(m *ISV) (genuine, impostor float64) {
		var g, imp float64
		for i, name := range names {
			spk, err := m.Enroll(sessions[name][:2])
			if err != nil {
				t.Fatal(err)
			}
			gs, err := spk.Score(sessions[name][3])
			if err != nil {
				t.Fatal(err)
			}
			g += gs
			other := names[(i+1)%len(names)]
			is, err := spk.Score(sessions[other][3])
			if err != nil {
				t.Fatal(err)
			}
			imp += is
		}
		n := float64(len(names))
		return g / n, imp / n
	}
	gComp, iComp := stats(isv)
	gPlain, _ := stats(noComp)
	if gComp <= gPlain {
		t.Errorf("compensation did not improve genuine cross-session score: %v <= %v", gComp, gPlain)
	}
	// Speakers must remain separated under compensation.
	if gComp <= iComp {
		t.Errorf("compensated genuine %v <= impostor %v", gComp, iComp)
	}
}

func TestISVSubspaceOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	isv, _ := trainTestISV(t, rng)
	if isv.Rank() < 1 {
		t.Fatal("no subspace learned")
	}
	for i := 0; i < isv.Rank(); i++ {
		var norm float64
		for _, v := range isv.u[i] {
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-6 {
			t.Errorf("direction %d norm² = %v", i, norm)
		}
		for j := i + 1; j < isv.Rank(); j++ {
			var dot float64
			for d := range isv.u[i] {
				dot += isv.u[i][d] * isv.u[j][d]
			}
			if math.Abs(dot) > 1e-4 {
				t.Errorf("directions %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
}

func TestISVCompensateRemovesSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	isv, _ := trainTestISV(t, rng)
	sv := make([]float64, isv.SupervectorDim())
	for i := range sv {
		sv[i] = rng.NormFloat64()
	}
	comp := isv.compensate(sv)
	for i, u := range isv.u {
		var dot float64
		for d := range comp {
			dot += comp[d] * u[d]
		}
		if math.Abs(dot) > 1e-8 {
			t.Errorf("residual projection on direction %d: %v", i, dot)
		}
	}
}

func TestTrainISVErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pool, sessions, _ := sessionData(3, 3, 50, rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainISV(ubm, sessions, ISVConfig{Rank: 0, Relevance: 4}); err == nil {
		t.Error("rank 0 should error")
	}
	if _, err := TrainISV(ubm, sessions, ISVConfig{Rank: 2, Relevance: 0}); err == nil {
		t.Error("relevance 0 should error")
	}
	// Single-session speakers cannot train ISV.
	single := map[string][][][]float64{"A": sessions["A"][:1], "B": sessions["B"][:1]}
	if _, err := TrainISV(ubm, single, ISVConfig{Rank: 2, Relevance: 4}); err == nil {
		t.Error("single-session corpus should error")
	}
}

func TestISVEnrollErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	isv, _ := trainTestISV(t, rng)
	if _, err := isv.Enroll(nil); err == nil {
		t.Error("empty enrollment should error")
	}
}
