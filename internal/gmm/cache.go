package gmm

import (
	"container/list"
	"sync"

	"voiceguard/internal/telemetry"
)

// DefaultModelCacheSize is the default compiled-model LRU capacity. A
// compiled 32×20 model is a few kilobytes, so the default keeps the
// whole enrolled population of any test or demo deployment hot while
// bounding a large fleet's resident set to a few hundred kilobytes.
const DefaultModelCacheSize = 128

// CacheMetrics wires a ModelCache into a telemetry registry. Any nil
// field disables that series; the zero value disables them all.
type CacheMetrics struct {
	// Hits counts lookups served from the cache.
	Hits *telemetry.Counter
	// Misses counts lookups that had to compile.
	Misses *telemetry.Counter
	// Evictions counts entries dropped by the LRU bound.
	Evictions *telemetry.Counter
	// ResidentBytes tracks the total SizeBytes of cached models.
	ResidentBytes *telemetry.Gauge
}

// ModelCache is a bounded LRU of compiled scoring models keyed by the
// source model's content digest. Verification traffic concentrates on a
// small set of hot speakers; caching their compiled form makes repeat
// verifies pay only the lookup, while re-enrollment naturally invalidates
// (a retrained model has a new digest, and the stale entry ages out).
// Safe for concurrent use.
type ModelCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	byDigest map[string]*list.Element
	bytes    int64
	metrics  CacheMetrics
}

type cacheEntry struct {
	digest string
	model  *ScoringModel
}

// NewModelCache builds a cache holding at most capacity compiled models
// (≤ 0 selects DefaultModelCacheSize).
func NewModelCache(capacity int, metrics CacheMetrics) *ModelCache {
	if capacity <= 0 {
		capacity = DefaultModelCacheSize
	}
	return &ModelCache{
		capacity: capacity,
		order:    list.New(),
		byDigest: make(map[string]*list.Element),
		metrics:  metrics,
	}
}

// Get returns the compiled model for digest, invoking compile on a miss
// and retaining the result. compile runs under the cache lock:
// compilation is one flat copy of the model, and serializing it gives
// single-flight semantics — concurrent requests for the same digest
// compile exactly once.
func (c *ModelCache) Get(digest string, compile func() (*ScoringModel, error)) (*ScoringModel, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byDigest[digest]; ok {
		c.order.MoveToFront(el)
		if c.metrics.Hits != nil {
			c.metrics.Hits.Inc()
		}
		return el.Value.(*cacheEntry).model, nil
	}
	if c.metrics.Misses != nil {
		c.metrics.Misses.Inc()
	}
	model, err := compile()
	if err != nil {
		return nil, err
	}
	c.byDigest[digest] = c.order.PushFront(&cacheEntry{digest: digest, model: model})
	c.bytes += int64(model.SizeBytes())
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		ent := last.Value.(*cacheEntry)
		c.order.Remove(last)
		delete(c.byDigest, ent.digest)
		c.bytes -= int64(ent.model.SizeBytes())
		if c.metrics.Evictions != nil {
			c.metrics.Evictions.Inc()
		}
	}
	if c.metrics.ResidentBytes != nil {
		c.metrics.ResidentBytes.Set(float64(c.bytes))
	}
	return model, nil
}

// Len returns the number of cached models.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// ResidentBytes returns the total SizeBytes of the cached models.
func (c *ModelCache) ResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
