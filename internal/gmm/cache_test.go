package gmm

import (
	"errors"
	"fmt"
	"testing"

	"voiceguard/internal/telemetry"
)

func cacheMetricsFixture(r *telemetry.Registry) CacheMetrics {
	return CacheMetrics{
		Hits:          r.Counter("test_cache_events", telemetry.Labels{"event": "hit"}),
		Misses:        r.Counter("test_cache_events", telemetry.Labels{"event": "miss"}),
		Evictions:     r.Counter("test_cache_events", telemetry.Labels{"event": "eviction"}),
		ResidentBytes: r.Gauge("test_cache_bytes", nil),
	}
}

func TestModelCacheLRU(t *testing.T) {
	f := loadMFCCFixture(t)
	reg := telemetry.NewRegistry()
	metrics := cacheMetricsFixture(reg)
	cache := NewModelCache(2, metrics)
	compileUBM := func() (*ScoringModel, error) { return Compile(f.ubm) }

	a, err := cache.Get("digest-a", compileUBM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Get("digest-b", compileUBM); err != nil {
		t.Fatal(err)
	}
	// Hit on a keeps it most-recently-used.
	a2, err := cache.Get("digest-a", compileUBM)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Error("hit returned a different compiled model")
	}
	// Inserting c evicts b (LRU), not a.
	if _, err := cache.Get("digest-c", compileUBM); err != nil {
		t.Fatal(err)
	}
	if got := cache.Len(); got != 2 {
		t.Errorf("cache holds %d models, want 2", got)
	}
	a3, err := cache.Get("digest-a", compileUBM)
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a {
		t.Error("digest-a was evicted out of LRU order")
	}
	if hits := metrics.Hits.Value(); hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
	if misses := metrics.Misses.Value(); misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
	if ev := metrics.Evictions.Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	wantBytes := int64(2 * a.SizeBytes())
	if got := cache.ResidentBytes(); got != wantBytes {
		t.Errorf("resident bytes = %d, want %d", got, wantBytes)
	}
	if g := metrics.ResidentBytes.Value(); int64(g) != wantBytes {
		t.Errorf("gauge = %v, want %d", g, wantBytes)
	}
}

func TestModelCacheCompileError(t *testing.T) {
	cache := NewModelCache(0, CacheMetrics{}) // zero metrics, default capacity
	wantErr := errors.New("boom")
	if _, err := cache.Get("bad", func() (*ScoringModel, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("got %v, want %v", err, wantErr)
	}
	if cache.Len() != 0 {
		t.Error("failed compile was retained")
	}
}

func TestModelCacheDefaultCapacity(t *testing.T) {
	f := loadMFCCFixture(t)
	cache := NewModelCache(-5, CacheMetrics{})
	for i := 0; i < DefaultModelCacheSize+10; i++ {
		digest := fmt.Sprintf("d-%d", i)
		if _, err := cache.Get(digest, func() (*ScoringModel, error) { return Compile(f.ubm) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := cache.Len(); got != DefaultModelCacheSize {
		t.Errorf("cache holds %d, want the default bound %d", got, DefaultModelCacheSize)
	}
}
