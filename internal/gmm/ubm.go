package gmm

import (
	"fmt"
	"math"

	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// This file implements the GMM-UBM speaker-verification recipe: a
// universal background model trained on many speakers, per-speaker models
// derived by maximum-a-posteriori adaptation of the UBM means, and
// verification by frame-averaged log-likelihood ratio.

// TrainUBM trains the universal background model by pooling frames from
// many speakers. It is a thin wrapper over Train kept separate for intent
// at call sites.
func TrainUBM(pooledFrames [][]float64, cfg TrainConfig) (*GMM, error) {
	g, err := Train(pooledFrames, cfg)
	if err != nil {
		return nil, fmt.Errorf("gmm: training UBM: %w", err)
	}
	return g, nil
}

// MAPAdapt derives a speaker model from the UBM by adapting component
// means toward the speaker's enrollment frames with the given relevance
// factor (typically 4–19; Spear uses 4 for small enrollment sets).
// Weights and variances are kept from the UBM, the standard recipe.
func MAPAdapt(ubm *GMM, frames [][]float64, relevance float64) (*GMM, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("%w: no enrollment frames", ErrBadTrainingData)
	}
	if relevance <= 0 {
		return nil, fmt.Errorf("gmm: relevance factor %v must be positive", relevance)
	}
	k := ubm.NumComponents()
	dim := ubm.Dim()
	n, first, err := AccumulateStats(ubm, frames)
	if err != nil {
		return nil, err
	}
	out := ubm.Clone()
	for c := 0; c < k; c++ {
		alpha := n[c] / (n[c] + relevance)
		for d := 0; d < dim; d++ {
			var ml float64
			if n[c] > 1e-10 {
				ml = first[c][d] / n[c]
			} else {
				ml = ubm.Means[c][d]
			}
			out.Means[c][d] = alpha*ml + (1-alpha)*ubm.Means[c][d]
		}
	}
	out.refreshNorm()
	return out, nil
}

// AccumulateStats computes zeroth-order (n) and first-order (sum) Baum–
// Welch statistics of frames against the model. Posteriors are computed in
// parallel tiles and accumulated serially in frame order, so the statistics
// are bit-identical to a serial pass.
func AccumulateStats(g *GMM, frames [][]float64) (n []float64, first [][]float64, err error) {
	k := g.NumComponents()
	dim := g.Dim()
	for i, x := range frames {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("%w: frame %d has dim %d, want %d", ErrBadTrainingData, i, len(x), dim)
		}
	}
	n = make([]float64, k)
	first = newMatrix(k, dim)
	if len(frames) == 0 {
		return n, first, nil
	}
	tile := newRespTile(len(frames), k)
	for base := 0; base < len(frames); base += tile.size() {
		cnt := tile.compute(g, frames, base)
		for i := 0; i < cnt; i++ {
			resp := tile.resp[i]
			x := frames[base+i]
			for c := 0; c < k; c++ {
				r := resp[c]
				if stats.IsZero(r) {
					continue
				}
				n[c] += r
				for d, v := range x {
					first[c][d] += r * v
				}
			}
		}
	}
	return n, first, nil
}

// Verifier scores test utterances against an enrolled speaker using the
// frame-averaged log-likelihood ratio between the speaker model and the
// UBM. Higher scores mean "more likely the enrolled speaker".
type Verifier struct {
	UBM     *GMM
	Speaker *GMM
}

// NewVerifier enrolls a speaker from feature frames.
func NewVerifier(ubm *GMM, enrollFrames [][]float64, relevance float64) (*Verifier, error) {
	spk, err := MAPAdapt(ubm, enrollFrames, relevance)
	if err != nil {
		return nil, fmt.Errorf("gmm: enrolling speaker: %w", err)
	}
	return &Verifier{UBM: ubm, Speaker: spk}, nil
}

// Score returns the frame-averaged log-likelihood ratio of the test
// frames. Empty input scores -Inf.
func (v *Verifier) Score(frames [][]float64) float64 {
	return v.ScoreSpan(nil, frames)
}

// ScoreSpan is Score recording its two likelihood passes under span: the
// span (nil disables tracing at zero cost) gains "model-loglik" and
// "ubm-loglik" children plus the resulting llr attribute. The caller owns
// span's End; the result is bit-identical to Score.
func (v *Verifier) ScoreSpan(span *telemetry.Span, frames [][]float64) float64 {
	if len(frames) == 0 {
		return math.Inf(-1)
	}
	ms := span.StartSpan("model-loglik")
	model := v.Speaker.MeanLogLikelihoodSpan(ms, frames)
	ms.End()
	us := span.StartSpan("ubm-loglik")
	background := v.UBM.MeanLogLikelihoodSpan(us, frames)
	us.End()
	llr := model - background
	span.SetFloat("llr", llr, "nat/frame")
	return llr
}
