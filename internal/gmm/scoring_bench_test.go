package gmm

import "testing"

// The benchmarks score the shared production-shaped fixture — a
// 32-component UBM over real MFCC frames, the exact model family the
// serving path runs — mirroring cmd/benchgen's micro-row setup. The
// Exact/TopCShortlist pair is the fast path's headline speedup.

func benchModelAndFrames(b *testing.B) (*GMM, *ScoringModel, [][]float64) {
	b.Helper()
	f := loadMFCCFixture(b)
	sm, _ := compileFixture(b, f)
	if len(f.pool) < 300 {
		b.Fatalf("only %d MFCC frames pooled", len(f.pool))
	}
	return f.ubm, sm, f.pool[:300]
}

func BenchmarkMeanLogLikelihoodExact(b *testing.B) {
	model, _, frames := benchModelAndFrames(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.MeanLogLikelihood(frames)
	}
}

func BenchmarkTopCShortlist(b *testing.B) {
	_, sm, frames := benchModelAndFrames(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.TopC(frames, DefaultShortlistC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreShortlist(b *testing.B) {
	f := loadMFCCFixture(b)
	ubm, spk := compileFixture(b, f)
	frames := f.pool[:300]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScoreShortlist(ubm, spk, frames, DefaultShortlistC); err != nil {
			b.Fatal(err)
		}
	}
}
