package gmm

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestGMMSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := blobs([][]float64{{0, 0}, {5, 5}}, 100, 1, rng)
	g, err := Train(data, TrainConfig{Components: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGMM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical log-likelihoods on sample points.
	for _, x := range data[:10] {
		if a, b := g.LogLikelihood(x), loaded.LogLikelihood(x); a != b {
			t.Fatalf("ll mismatch: %v vs %v", a, b)
		}
	}
}

func TestLoadGMMRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":       "garbage",
		"wrong version":  `{"version":99,"weights":[1],"means":[[0]],"vars":[[1]]}`,
		"empty":          `{"version":1,"weights":[],"means":[],"vars":[]}`,
		"ragged":         `{"version":1,"weights":[1],"means":[[0,0]],"vars":[[1]]}`,
		"negative var":   `{"version":1,"weights":[1],"means":[[0]],"vars":[[-1]]}`,
		"bad weight sum": `{"version":1,"weights":[0.2],"means":[[0]],"vars":[[1]]}`,
		"neg weight":     `{"version":1,"weights":[-0.5,1.5],"means":[[0],[1]],"vars":[[1],[1]]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadGMM(strings.NewReader(payload)); err == nil {
				t.Error("corrupt model accepted")
			}
		})
	}
}

func TestISVSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pool, sessions, _ := sessionData(4, 3, 60, rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	isv, err := TrainISV(ubm, sessions, ISVConfig{Rank: 2, Relevance: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := isv.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadISV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rank() != isv.Rank() {
		t.Errorf("rank = %d, want %d", loaded.Rank(), isv.Rank())
	}
	// Enroll+score must produce identical results across the round trip.
	spkA, err := isv.Enroll(sessions["A"][:2])
	if err != nil {
		t.Fatal(err)
	}
	spkB, err := loaded.Enroll(sessions["A"][:2])
	if err != nil {
		t.Fatal(err)
	}
	sa, err := spkA.Score(sessions["A"][2])
	if err != nil {
		t.Fatal(err)
	}
	sb, err := spkB.Score(sessions["A"][2])
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("score mismatch: %v vs %v", sa, sb)
	}
	if loaded.UBM() == nil {
		t.Error("UBM accessor nil")
	}
}

func TestLoadISVRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":      "x",
		"wrong version": `{"version":9}`,
		"bad relevance": `{"version":1,"ubm":{"version":1,"weights":[1],"means":[[0]],"vars":[[1]]},"u":[],"relevance":0}`,
		"bad direction": `{"version":1,"ubm":{"version":1,"weights":[1],"means":[[0]],"vars":[[1]]},"u":[[1,2]],"relevance":4}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadISV(strings.NewReader(payload)); err == nil {
				t.Error("corrupt ISV accepted")
			}
		})
	}
}
