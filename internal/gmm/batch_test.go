package gmm

import (
	"sync"
	"testing"
	"time"
)

func batchFixture(t *testing.T) (*ScoringModel, [][]float64) {
	t.Helper()
	f := loadMFCCFixture(t)
	sm, _ := compileFixture(t, f)
	return sm, f.pool
}

// TestBatcherBitIdentical is the batching layer's core claim: a request
// scored inside a coalesced batch gets exactly the bits it would have
// computed alone.
func TestBatcherBitIdentical(t *testing.T) {
	sm, pool := batchFixture(t)
	b, err := NewBatcher(sm, BatchConfig{Window: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const workers = 8
	const uttFrames = 40
	type result struct {
		sl  *Shortlist
		err error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			utt := pool[w*uttFrames : (w+1)*uttFrames]
			sl, err := b.ScoreUBM(utt)
			results[w] = result{sl, err}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if results[w].err != nil {
			t.Fatalf("worker %d: %v", w, results[w].err)
		}
		utt := pool[w*uttFrames : (w+1)*uttFrames]
		want, err := sm.TopC(utt, DefaultShortlistC)
		if err != nil {
			t.Fatal(err)
		}
		got := results[w].sl
		if got.C != want.C || len(got.LL) != len(want.LL) {
			t.Fatalf("worker %d: shape C=%d/%d frames=%d/%d", w, got.C, want.C, len(got.LL), len(want.LL))
		}
		for i := range want.LL {
			if got.LL[i] != want.LL[i] {
				t.Fatalf("worker %d frame %d: batched LL %v, direct %v", w, i, got.LL[i], want.LL[i])
			}
		}
		for i := range want.Indices {
			if got.Indices[i] != want.Indices[i] {
				t.Fatalf("worker %d index %d: batched %d, direct %d", w, i, got.Indices[i], want.Indices[i])
			}
		}
	}
}

// TestBatcherMaxFramesFlush pins the early flush: a batch at the frame
// bound must not wait out the window.
func TestBatcherMaxFramesFlush(t *testing.T) {
	sm, pool := batchFixture(t)
	var mu sync.Mutex
	var flushes [][2]int
	b, err := NewBatcher(sm, BatchConfig{
		Window:    time.Hour, // the frame bound must flush long before this
		MaxFrames: 30,
		OnFlush: func(requests, frames int) {
			mu.Lock()
			flushes = append(flushes, [2]int{requests, frames})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := b.ScoreUBM(pool[:40])
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("frame-bound flush never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 1 || flushes[0][0] != 1 || flushes[0][1] != 40 {
		t.Errorf("flushes = %v, want one flush of 1 request / 40 frames", flushes)
	}
}

func TestBatcherClose(t *testing.T) {
	sm, pool := batchFixture(t)
	b, err := NewBatcher(sm, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	// After Close submissions degrade to direct scoring.
	sl, err := b.ScoreUBM(pool[:10])
	if err != nil {
		t.Fatal(err)
	}
	want, err := sm.TopC(pool[:10], DefaultShortlistC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.LL {
		if sl.LL[i] != want.LL[i] {
			t.Fatalf("post-Close frame %d: %v vs %v", i, sl.LL[i], want.LL[i])
		}
	}
}

func TestBatcherValidation(t *testing.T) {
	sm, _ := batchFixture(t)
	if _, err := NewBatcher(nil, BatchConfig{}); err == nil {
		t.Error("nil UBM accepted")
	}
	if _, err := NewBatcher(sm, BatchConfig{TopC: -1}); err == nil {
		t.Error("negative shortlist width accepted")
	}
	b, err := NewBatcher(sm, BatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// A malformed request fails before touching the queue.
	if _, err := b.ScoreUBM([][]float64{{1, 2}}); err == nil {
		t.Error("dim mismatch accepted")
	}
	// An empty request short-circuits without waiting for a batch.
	sl, err := b.ScoreUBM(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.LL) != 0 {
		t.Errorf("empty request produced %d frames", len(sl.LL))
	}
}
