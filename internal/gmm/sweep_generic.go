//go:build !amd64

package gmm

// quadSweep on non-amd64 platforms is the portable reference sweep.
func quadSweep(means, invVars, xf, out []float32, k, stride int) {
	quadSweepGeneric(means, invVars, xf, out, k, stride)
}

// topCSelect on non-amd64 platforms is the portable extraction, which
// the amd64 AVX2 kernel matches bit for bit.
func topCSelect(scores []float32, vals []float64, idx []int32) {
	topCExtract(scores, vals, idx)
}

// scoreSelect on non-amd64 platforms converts quadratic forms to scores
// in place (consts[i] − q[i]/2, float32 throughout — the same exact
// values the amd64 fused kernel produces) and extracts the best.
func scoreSelect(q, consts []float32, vals []float64, idx []int32) {
	consts = consts[:len(q)]
	for i := range q {
		q[i] = consts[i] - 0.5*q[i]
	}
	topCExtract(q, vals, idx)
}
