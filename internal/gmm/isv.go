package gmm

import (
	"fmt"
	"math"
	"sort"

	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// This file implements a simplified inter-session variability (ISV)
// back-end. Full ISV (as in Spear) learns a low-rank session subspace U in
// GMM mean-supervector space by EM and models each utterance supervector
// as m + Ux + Dz. This implementation keeps the essential mechanism —
// estimate the dominant directions of *within-speaker, across-session*
// supervector variation and remove them before scoring — while replacing
// the EM with a direct eigen-decomposition of the within-speaker scatter,
// and estimating the test utterance's session factor with a MAP point
// estimate (its subspace projection) before LLR scoring. DESIGN.md
// records this as a documented simplification.

// ISVConfig configures ISV training.
type ISVConfig struct {
	// Rank is the session-subspace dimensionality (typically 5–50).
	Rank int
	// Relevance is the MAP relevance factor used for the underlying
	// supervector extraction.
	Relevance float64
}

// ISV is the trained session-variability model.
type ISV struct {
	ubm *GMM
	// u holds the session subspace: Rank rows, each a unit supervector
	// direction of length NumComponents*Dim.
	u [][]float64
	// relevance for supervector extraction.
	relevance float64
}

// SupervectorDim returns the dimensionality of mean supervectors.
func (m *ISV) SupervectorDim() int { return m.ubm.NumComponents() * m.ubm.Dim() }

// Rank returns the session-subspace rank.
func (m *ISV) Rank() int { return len(m.u) }

// supervector extracts the normalized mean-offset supervector of an
// utterance: the MAP-adapted means minus the UBM means, scaled per
// dimension by sqrt(weight)/sigma (the standard Kullback-directed
// normalization).
func supervector(ubm *GMM, frames [][]float64, relevance float64) ([]float64, error) {
	adapted, err := MAPAdapt(ubm, frames, relevance)
	if err != nil {
		return nil, err
	}
	k := ubm.NumComponents()
	dim := ubm.Dim()
	sv := make([]float64, k*dim)
	for c := 0; c < k; c++ {
		scale := math.Sqrt(ubm.Weights[c])
		for d := 0; d < dim; d++ {
			sv[c*dim+d] = scale * (adapted.Means[c][d] - ubm.Means[c][d]) / math.Sqrt(ubm.Vars[c][d])
		}
	}
	return sv, nil
}

// TrainISV learns the session subspace from a training set grouped by
// speaker: sessions[speaker] is a list of per-session feature matrices.
// At least two speakers with two sessions each are required.
func TrainISV(ubm *GMM, sessions map[string][][][]float64, cfg ISVConfig) (*ISV, error) {
	if cfg.Rank < 1 {
		return nil, fmt.Errorf("gmm: ISV rank %d must be positive", cfg.Rank)
	}
	if cfg.Relevance <= 0 {
		return nil, fmt.Errorf("gmm: ISV relevance %v must be positive", cfg.Relevance)
	}
	// Collect within-speaker deviations of session supervectors,
	// iterating speakers in sorted order so the scatter rows (and the
	// power-iteration results) are deterministic.
	names := make([]string, 0, len(sessions))
	for spk := range sessions {
		names = append(names, spk)
	}
	sort.Strings(names)
	var deviations [][]float64
	for _, spk := range names {
		sess := sessions[spk]
		if len(sess) < 2 {
			continue
		}
		svs := make([][]float64, 0, len(sess))
		for i, frames := range sess {
			sv, err := supervector(ubm, frames, cfg.Relevance)
			if err != nil {
				return nil, fmt.Errorf("gmm: ISV supervector for %s session %d: %w", spk, i, err)
			}
			svs = append(svs, sv)
		}
		mean := make([]float64, len(svs[0]))
		for _, sv := range svs {
			for d, v := range sv {
				mean[d] += v
			}
		}
		for d := range mean {
			mean[d] /= float64(len(svs))
		}
		for _, sv := range svs {
			dev := make([]float64, len(sv))
			for d, v := range sv {
				dev[d] = v - mean[d]
			}
			deviations = append(deviations, dev)
		}
	}
	if len(deviations) < 2 {
		return nil, fmt.Errorf("%w: ISV needs ≥2 speakers with ≥2 sessions", ErrBadTrainingData)
	}
	rank := cfg.Rank
	if rank > len(deviations)-1 {
		rank = len(deviations) - 1
	}
	u := dominantDirections(deviations, rank)
	return &ISV{ubm: ubm, u: u, relevance: cfg.Relevance}, nil
}

// dominantDirections finds the top-r orthonormal directions of the rows'
// scatter via power iteration with deflation, operating in the span of the
// rows (Gram trick) so cost scales with the number of rows, not the
// supervector length.
func dominantDirections(rows [][]float64, r int) [][]float64 {
	n := len(rows)
	dim := len(rows[0])
	// Gram matrix G = X Xᵀ (n×n).
	g := newMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for d := 0; d < dim; d++ {
				s += rows[i][d] * rows[j][d]
			}
			g[i][j] = s
			g[j][i] = s
		}
	}
	dirs := make([][]float64, 0, r)
	work := make([]float64, n)
	for k := 0; k < r; k++ {
		// Power iteration on G. The start vector must not be a structured
		// direction (e.g. all-ones lies in the null space when deviations
		// sum to zero per speaker), so use a fixed pseudo-random pattern.
		v := make([]float64, n)
		var vn float64
		for i := range v {
			v[i] = math.Sin(float64(i+1) * 12.9898 * float64(k+1))
			vn += v[i] * v[i]
		}
		vn = math.Sqrt(vn)
		for i := range v {
			v[i] /= vn
		}
		var eig float64
		for iter := 0; iter < 200; iter++ {
			for i := 0; i < n; i++ {
				var s float64
				for j := 0; j < n; j++ {
					s += g[i][j] * v[j]
				}
				work[i] = s
			}
			var norm float64
			for _, x := range work {
				norm += x * x
			}
			norm = math.Sqrt(norm)
			if norm < 1e-12 {
				break
			}
			diff := 0.0
			for i := range v {
				nv := work[i] / norm
				diff += math.Abs(nv - v[i])
				v[i] = nv
			}
			eig = norm
			if diff < 1e-10 {
				break
			}
		}
		if eig < 1e-10 {
			break
		}
		// Map back to supervector space: u = Xᵀ v, normalized.
		u := make([]float64, dim)
		for i := 0; i < n; i++ {
			if stats.IsZero(v[i]) {
				continue
			}
			for d := 0; d < dim; d++ {
				u[d] += rows[i][d] * v[i]
			}
		}
		var norm float64
		for _, x := range u {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			break
		}
		for d := range u {
			u[d] /= norm
		}
		dirs = append(dirs, u)
		// Deflate: G ← G - eig v vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g[i][j] -= eig * v[i] * v[j]
			}
		}
	}
	return dirs
}

// compensate removes the session-subspace component of a supervector,
// returning a new vector.
func (m *ISV) compensate(sv []float64) []float64 {
	out := append([]float64(nil), sv...)
	for _, u := range m.u {
		var proj float64
		for d, v := range sv {
			proj += u[d] * v
		}
		for d := range out {
			out[d] -= proj * u[d]
		}
	}
	return out
}

// ISVSpeaker is an enrolled speaker under the ISV back-end.
type ISVSpeaker struct {
	model *ISV
	// ref is the session-compensated enrollment mean-offset supervector
	// (normalized coordinates).
	ref []float64
}

// Enroll builds the speaker reference from one or more enrollment feature
// matrices: each session's supervector offset is session-compensated and
// the results are averaged.
func (m *ISV) Enroll(enrollSessions [][][]float64) (*ISVSpeaker, error) {
	if len(enrollSessions) == 0 {
		return nil, fmt.Errorf("%w: no enrollment sessions", ErrBadTrainingData)
	}
	acc := make([]float64, m.SupervectorDim())
	for i, frames := range enrollSessions {
		sv, err := supervector(m.ubm, frames, m.relevance)
		if err != nil {
			return nil, fmt.Errorf("gmm: ISV enrollment session %d: %w", i, err)
		}
		comp := m.compensate(sv)
		for d, v := range comp {
			acc[d] += v
		}
	}
	for d := range acc {
		acc[d] /= float64(len(enrollSessions))
	}
	return &ISVSpeaker{model: m, ref: acc}, nil
}

// Score verifies test frames against the enrolled speaker following the
// Spear ISV recipe in simplified form: the test utterance's own session
// component (its supervector projection onto the session subspace, a MAP
// point estimate of Ux) is added to the speaker offset, the combined
// offset is folded back into GMM means, and the utterance is scored by
// the frame-averaged log-likelihood ratio against the UBM.
func (s *ISVSpeaker) Score(frames [][]float64) (float64, error) {
	return s.ScoreSpan(nil, frames)
}

// ScoreSpan is Score recording its two likelihood passes under span: the
// span (nil disables tracing at zero cost) gains "model-loglik" and
// "ubm-loglik" children plus the resulting llr attribute. The caller owns
// span's End; the result is bit-identical to Score.
func (s *ISVSpeaker) ScoreSpan(span *telemetry.Span, frames [][]float64) (float64, error) {
	m := s.model
	sv, err := supervector(m.ubm, frames, m.relevance)
	if err != nil {
		return 0, fmt.Errorf("gmm: ISV test supervector: %w", err)
	}
	// Session component of the test utterance.
	session := make([]float64, len(sv))
	for _, u := range m.u {
		var proj float64
		for d, v := range sv {
			proj += u[d] * v
		}
		for d := range session {
			session[d] += proj * u[d]
		}
	}
	// Speaker model: UBM means shifted by (speaker offset + test-session
	// offset), denormalized back to feature space.
	speaker := m.ubm.Clone()
	k := m.ubm.NumComponents()
	dim := m.ubm.Dim()
	for c := 0; c < k; c++ {
		scale := math.Sqrt(m.ubm.Weights[c])
		if scale < 1e-12 {
			continue
		}
		for d := 0; d < dim; d++ {
			off := (s.ref[c*dim+d] + session[c*dim+d]) * math.Sqrt(m.ubm.Vars[c][d]) / scale
			speaker.Means[c][d] += off
		}
	}
	speaker.refreshNorm()
	ms := span.StartSpan("model-loglik")
	model := speaker.MeanLogLikelihoodSpan(ms, frames)
	ms.End()
	us := span.StartSpan("ubm-loglik")
	background := m.ubm.MeanLogLikelihoodSpan(us, frames)
	us.End()
	llr := model - background
	span.SetFloat("llr", llr, "nat/frame")
	return llr, nil
}
