package gmm

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: trained UBMs and ISV session models are expensive to
// build, so deployments save them once and load them at startup. The
// encoding is versioned JSON.

// gmmDTO is the serialized form of a GMM.
type gmmDTO struct {
	Version int         `json:"version"`
	Weights []float64   `json:"weights"`
	Means   [][]float64 `json:"means"`
	Vars    [][]float64 `json:"vars"`
}

const persistVersion = 1

// Save writes the model to w.
func (g *GMM) Save(w io.Writer) error {
	dto := gmmDTO{
		Version: persistVersion,
		Weights: g.Weights,
		Means:   g.Means,
		Vars:    g.Vars,
	}
	if err := json.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("gmm: saving model: %w", err)
	}
	return nil
}

// LoadGMM reads a model written by Save and validates its shape.
func LoadGMM(r io.Reader) (*GMM, error) {
	var dto gmmDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("gmm: loading model: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("gmm: unsupported model version %d", dto.Version)
	}
	g := &GMM{Weights: dto.Weights, Means: dto.Means, Vars: dto.Vars}
	if err := g.validateShape(); err != nil {
		return nil, err
	}
	g.refreshNorm()
	return g, nil
}

// validateShape checks internal consistency after deserialization.
func (g *GMM) validateShape() error {
	k := len(g.Weights)
	if k == 0 || len(g.Means) != k || len(g.Vars) != k {
		return fmt.Errorf("%w: inconsistent component counts (%d weights, %d means, %d vars)",
			ErrBadTrainingData, k, len(g.Means), len(g.Vars))
	}
	dim := len(g.Means[0])
	if dim == 0 {
		return fmt.Errorf("%w: zero-dimensional means", ErrBadTrainingData)
	}
	var wsum float64
	for c := 0; c < k; c++ {
		if len(g.Means[c]) != dim || len(g.Vars[c]) != dim {
			return fmt.Errorf("%w: component %d has inconsistent dimensions", ErrBadTrainingData, c)
		}
		if g.Weights[c] < 0 {
			return fmt.Errorf("%w: negative weight %v", ErrBadTrainingData, g.Weights[c])
		}
		wsum += g.Weights[c]
		for d := 0; d < dim; d++ {
			if g.Vars[c][d] <= 0 {
				return fmt.Errorf("%w: non-positive variance at [%d][%d]", ErrBadTrainingData, c, d)
			}
		}
	}
	if wsum < 0.99 || wsum > 1.01 {
		return fmt.Errorf("%w: weights sum to %v", ErrBadTrainingData, wsum)
	}
	return nil
}

// isvDTO is the serialized form of an ISV model.
type isvDTO struct {
	Version   int         `json:"version"`
	UBM       gmmDTO      `json:"ubm"`
	U         [][]float64 `json:"u"`
	Relevance float64     `json:"relevance"`
}

// Save writes the ISV model (including its UBM) to w.
func (m *ISV) Save(w io.Writer) error {
	dto := isvDTO{
		Version: persistVersion,
		UBM: gmmDTO{
			Version: persistVersion,
			Weights: m.ubm.Weights,
			Means:   m.ubm.Means,
			Vars:    m.ubm.Vars,
		},
		U:         m.u,
		Relevance: m.relevance,
	}
	if err := json.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("gmm: saving ISV model: %w", err)
	}
	return nil
}

// LoadISV reads an ISV model written by Save.
func LoadISV(r io.Reader) (*ISV, error) {
	var dto isvDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("gmm: loading ISV model: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("gmm: unsupported ISV version %d", dto.Version)
	}
	ubm := &GMM{Weights: dto.UBM.Weights, Means: dto.UBM.Means, Vars: dto.UBM.Vars}
	if err := ubm.validateShape(); err != nil {
		return nil, err
	}
	ubm.refreshNorm()
	if dto.Relevance <= 0 {
		return nil, fmt.Errorf("gmm: ISV relevance %v must be positive", dto.Relevance)
	}
	svDim := ubm.NumComponents() * ubm.Dim()
	for i, u := range dto.U {
		if len(u) != svDim {
			return nil, fmt.Errorf("gmm: ISV direction %d has dim %d, want %d", i, len(u), svDim)
		}
	}
	return &ISV{ubm: ubm, u: dto.U, relevance: dto.Relevance}, nil
}

// UBM exposes the underlying background model (e.g. for persistence of a
// wrapping verifier).
func (m *ISV) UBM() *GMM { return m.ubm }

// Ref exposes the enrolled reference supervector for persistence.
func (s *ISVSpeaker) Ref() []float64 {
	return append([]float64(nil), s.ref...)
}

// SpeakerFromRef reconstructs an enrolled speaker from a persisted
// reference supervector.
func (m *ISV) SpeakerFromRef(ref []float64) (*ISVSpeaker, error) {
	if len(ref) != m.SupervectorDim() {
		return nil, fmt.Errorf("gmm: reference dim %d, want %d", len(ref), m.SupervectorDim())
	}
	return &ISVSpeaker{model: m, ref: append([]float64(nil), ref...)}, nil
}
