package gmm

// Seed (pre-fan-out) scoring and accumulation paths kept in test code: the
// parallel implementations promise bit-identical results to these serial
// loops regardless of worker count, so the comparisons below use exact
// equality, not tolerances.

import (
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/stats"
)

// legacyMeanLogLikelihood is the seed serial scoring loop.
func legacyMeanLogLikelihood(g *GMM, frames [][]float64) float64 {
	if len(frames) == 0 {
		return math.Inf(-1)
	}
	var s float64
	for _, x := range frames {
		s += g.LogLikelihood(x)
	}
	return s / float64(len(frames))
}

// legacyAccumulateStats is the seed serial Baum–Welch accumulator.
func legacyAccumulateStats(g *GMM, frames [][]float64) (n []float64, first [][]float64) {
	k := g.NumComponents()
	dim := g.Dim()
	n = make([]float64, k)
	first = newMatrix(k, dim)
	resp := make([]float64, k)
	for _, x := range frames {
		g.responsibilities(x, resp)
		for c := 0; c < k; c++ {
			r := resp[c]
			if stats.IsZero(r) {
				continue
			}
			n[c] += r
			for d, v := range x {
				first[c][d] += r * v
			}
		}
	}
	return n, first
}

// legacyTrain duplicates Train with the seed's serial E-step so the tiled
// parallel E-step can be checked for bit-identical models.
func legacyTrain(data [][]float64, cfg TrainConfig) *GMM {
	cfg.setDefaults()
	dim := len(data[0])
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := kmeansInit(data, cfg.Components, rng)
	g.refreshNorm()

	prev := math.Inf(-1)
	resp := make([]float64, cfg.Components)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		n := make([]float64, cfg.Components)
		sum := newMatrix(cfg.Components, dim)
		sqsum := newMatrix(cfg.Components, dim)
		var total float64
		for _, x := range data {
			ll := g.responsibilities(x, resp)
			total += ll
			for k := 0; k < cfg.Components; k++ {
				r := resp[k]
				if stats.IsZero(r) {
					continue
				}
				n[k] += r
				for d, v := range x {
					sum[k][d] += r * v
					sqsum[k][d] += r * v * v
				}
			}
		}
		for k := 0; k < cfg.Components; k++ {
			if n[k] < 1e-8 {
				x := data[rng.Intn(len(data))]
				copy(g.Means[k], x)
				for d := range g.Vars[k] {
					g.Vars[k][d] = 1
				}
				g.Weights[k] = 1e-4
				continue
			}
			g.Weights[k] = n[k] / float64(len(data))
			for d := 0; d < dim; d++ {
				mu := sum[k][d] / n[k]
				g.Means[k][d] = mu
				v := sqsum[k][d]/n[k] - mu*mu
				if v < varFloor {
					v = varFloor
				}
				g.Vars[k][d] = v
			}
		}
		normalizeWeights(g.Weights)
		g.refreshNorm()

		mean := total / float64(len(data))
		if mean-prev < cfg.Tol && iter > 0 {
			break
		}
		prev = mean
	}
	return g
}

func scoringFixture(tb testing.TB, frames int) (*GMM, [][]float64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	centers := [][]float64{
		{0, 0, 0, 0}, {4, 4, 0, -2}, {-3, 2, 5, 1},
	}
	train := blobs(centers, 240, 0.8, rng)
	g, err := Train(train, TrainConfig{Components: 8, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	test := blobs(centers, frames/len(centers)+1, 0.9, rng)[:frames]
	return g, test
}

// TestMeanLogLikelihoodMatchesLegacy pins the determinism contract: the
// parallel fan-out must be bit-identical to the serial loop.
func TestMeanLogLikelihoodMatchesLegacy(t *testing.T) {
	g, test := scoringFixture(t, 201)
	for _, n := range []int{0, 1, 3, 7, 201} {
		got := g.MeanLogLikelihood(test[:n])
		want := legacyMeanLogLikelihood(g, test[:n])
		if got != want { //lint:allow floatcmp parallel scoring must be bit-identical to serial
			t.Fatalf("n=%d: parallel %v != serial %v", n, got, want)
		}
	}
}

// TestAccumulateStatsMatchesLegacy pins bit-identical Baum–Welch statistics
// from the tiled parallel accumulator, including across a tile boundary.
func TestAccumulateStatsMatchesLegacy(t *testing.T) {
	g, test := scoringFixture(t, respTileFrames+37)
	n, first, err := AccumulateStats(g, test)
	if err != nil {
		t.Fatal(err)
	}
	wantN, wantFirst := legacyAccumulateStats(g, test)
	for c := range n {
		if n[c] != wantN[c] { //lint:allow floatcmp tiled stats must be bit-identical to serial
			t.Fatalf("n[%d]: tiled %v != serial %v", c, n[c], wantN[c])
		}
		for d := range first[c] {
			if first[c][d] != wantFirst[c][d] { //lint:allow floatcmp tiled stats must be bit-identical to serial
				t.Fatalf("first[%d][%d]: tiled %v != serial %v", c, d, first[c][d], wantFirst[c][d])
			}
		}
	}
}

// TestTrainMatchesLegacyEStep pins that the tiled parallel E-step produces
// the same model, bit for bit, as the seed's serial E-step.
func TestTrainMatchesLegacyEStep(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := blobs([][]float64{{0, 0}, {5, 5}, {-4, 3}}, 300, 0.7, rng)
	cfg := TrainConfig{Components: 6, Seed: 9, MaxIter: 12}
	got, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := legacyTrain(data, cfg)
	for c := range want.Weights {
		if got.Weights[c] != want.Weights[c] { //lint:allow floatcmp tiled E-step must be bit-identical to serial
			t.Fatalf("weight %d: %v != %v", c, got.Weights[c], want.Weights[c])
		}
		for d := range want.Means[c] {
			if got.Means[c][d] != want.Means[c][d] { //lint:allow floatcmp tiled E-step must be bit-identical to serial
				t.Fatalf("mean %d/%d: %v != %v", c, d, got.Means[c][d], want.Means[c][d])
			}
			if got.Vars[c][d] != want.Vars[c][d] { //lint:allow floatcmp tiled E-step must be bit-identical to serial
				t.Fatalf("var %d/%d: %v != %v", c, d, got.Vars[c][d], want.Vars[c][d])
			}
		}
	}
}

// BenchmarkMeanLogLikelihoodLegacy / BenchmarkMeanLogLikelihood read as a
// before/after pair: serial per-frame allocation vs parallel fan-out with
// per-worker scratch.
func BenchmarkMeanLogLikelihoodLegacy(b *testing.B) {
	g, test := scoringFixture(b, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyMeanLogLikelihood(g, test)
	}
}

func BenchmarkMeanLogLikelihood(b *testing.B) {
	g, test := scoringFixture(b, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MeanLogLikelihood(test)
	}
}
