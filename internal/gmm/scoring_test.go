package gmm

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"voiceguard/internal/features"
	"voiceguard/internal/speech"
)

// mfccFixture is a production-shaped verification scenario: a
// 32-component UBM over real MFCC frames from the repo's own speech
// synthesis, an enrolled speaker, and per-utterance genuine/impostor
// test segments. Building it runs EM once, so tests share one instance.
type mfccFixture struct {
	ubm      *GMM
	verifier *Verifier
	pool     [][]float64   // all frames, UBM training set
	genuine  [][][]float64 // test utterances from the enrolled speaker
	impostor [][][]float64 // test utterances from everyone else
}

var (
	mfccOnce sync.Once
	mfccFix  *mfccFixture
	mfccErr  error
)

func loadMFCCFixture(tb testing.TB) *mfccFixture {
	tb.Helper()
	mfccOnce.Do(func() {
		mfccFix, mfccErr = buildMFCCFixture()
	})
	if mfccErr != nil {
		tb.Fatal(mfccErr)
	}
	return mfccFix
}

func buildMFCCFixture() (*mfccFixture, error) {
	utts, err := speech.NewRoster(4, 77).Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 5,
	})
	if err != nil {
		return nil, err
	}
	f := &mfccFixture{}
	enrollName := utts[0].Speaker
	var enroll [][]float64
	for _, u := range utts {
		fr, err := features.Extract(u.Audio, features.DefaultMFCCConfig())
		if err != nil {
			return nil, err
		}
		f.pool = append(f.pool, fr...)
		switch {
		case u.Speaker == enrollName && len(enroll) == 0:
			enroll = fr
		case u.Speaker == enrollName:
			f.genuine = append(f.genuine, fr)
		default:
			f.impostor = append(f.impostor, fr)
		}
	}
	f.ubm, err = TrainUBM(f.pool, TrainConfig{Components: 32, Seed: 1})
	if err != nil {
		return nil, err
	}
	f.verifier, err = NewVerifier(f.ubm, enroll, 16)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// testUtterances returns every test utterance with its exact-path LLR.
func (f *mfccFixture) testUtterances() [][][]float64 {
	out := append([][][]float64{}, f.genuine...)
	return append(out, f.impostor...)
}

func compileFixture(tb testing.TB, f *mfccFixture) (ubm, spk *ScoringModel) {
	tb.Helper()
	ubm, err := Compile(f.ubm)
	if err != nil {
		tb.Fatal(err)
	}
	spk, err = Compile(f.verifier.Speaker)
	if err != nil {
		tb.Fatal(err)
	}
	return ubm, spk
}

func TestQuadSweepMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, tc := range []struct{ k, stride int }{
		{32, 16}, // unrolled fast path
		{5, 4},   // single-block rows
		{7, 8},   // one double block
		{3, 24},  // loop plus trailing block
	} {
		means := make([]float32, tc.k*tc.stride)
		invVars := make([]float32, tc.k*tc.stride)
		xf := make([]float32, tc.stride)
		for i := range means {
			means[i] = float32(rng.NormFloat64())
			invVars[i] = float32(rng.Float64() + 0.1)
		}
		for i := range xf {
			xf[i] = float32(rng.NormFloat64())
		}
		got := make([]float32, tc.k)
		want := make([]float32, tc.k)
		quadSweep(means, invVars, xf, got, tc.k, tc.stride)
		quadSweepGeneric(means, invVars, xf, want, tc.k, tc.stride)
		for c := range want {
			if got[c] != want[c] {
				t.Errorf("k=%d stride=%d comp %d: kernel %v, generic %v",
					tc.k, tc.stride, c, got[c], want[c])
			}
		}
	}
}

func TestCompileDigestStable(t *testing.T) {
	f := loadMFCCFixture(t)
	a, err := Compile(f.ubm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(f.ubm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == "" || a.Digest() != b.Digest() {
		t.Errorf("digest not stable: %q vs %q", a.Digest(), b.Digest())
	}
	want, err := ModelDigest(f.ubm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != want {
		t.Errorf("compiled digest %q, model digest %q", a.Digest(), want)
	}
	if a.NumComponents() != f.ubm.NumComponents() || a.Dim() != f.ubm.Dim() {
		t.Errorf("shape %d/%d, want %d/%d", a.NumComponents(), a.Dim(),
			f.ubm.NumComponents(), f.ubm.Dim())
	}
	if a.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(&GMM{}); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("empty model: %v", err)
	}
	bad := &GMM{
		Weights: []float64{0.5, 0.5},
		Means:   [][]float64{{0, 0}, {1}},
		Vars:    [][]float64{{1, 1}, {1, 1}},
	}
	if _, err := Compile(bad); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("ragged means: %v", err)
	}
}

// TestQuantizedFullMatchesExact pins the float32 layout itself: with the
// shortlist disabled (C = NumComponents) the only difference from the
// exact path is quantization, which must stay far inside the ε budget.
func TestQuantizedFullMatchesExact(t *testing.T) {
	f := loadMFCCFixture(t)
	sm, _ := compileFixture(t, f)
	for i, utt := range f.testUtterances() {
		got, err := sm.MeanLogLikelihood(utt)
		if err != nil {
			t.Fatal(err)
		}
		want := f.ubm.MeanLogLikelihood(utt)
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("utt %d: quantized full LL %v, exact %v (Δ=%g)", i, got, want, got-want)
		}
	}
}

// TestPaddedDimensions runs the compiled path on a dimensionality that
// does not fill the stride (dim 6, stride 8), so the zero padding and
// the generic sweep's trailing block are both exercised.
func TestPaddedDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	centers := [][]float64{
		{0, 0, 0, 1, -1, 2}, {3, -2, 1, 0, 2, -1}, {-2, 2, -2, 2, 0, 1},
	}
	var data [][]float64
	for _, c := range centers {
		for i := 0; i < 80; i++ {
			row := make([]float64, len(c))
			for d := range row {
				row[d] = c[d] + 0.6*rng.NormFloat64()
			}
			data = append(data, row)
		}
	}
	model, err := Train(data, TrainConfig{Components: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Compile(model)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sm.MeanLogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	want := model.MeanLogLikelihood(data)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("dim-6 quantized LL %v, exact %v", got, want)
	}
}

// TestShortlistEpsilon is the fast path's headline equivalence claim:
// at the default shortlist width the fast LLR stays within
// ShortlistEpsilon of the exact path on every test utterance, and any
// verdict with margin beyond ε is identical.
func TestShortlistEpsilon(t *testing.T) {
	f := loadMFCCFixture(t)
	ubm, spk := compileFixture(t, f)
	const threshold = 0.0
	for i, utt := range f.testUtterances() {
		exact := f.verifier.Score(utt)
		fast, err := ScoreShortlist(ubm, spk, utt, DefaultShortlistC)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(fast - exact); d > ShortlistEpsilon {
			t.Errorf("utt %d: |ΔLLR| = %g > ε = %g (exact %v, fast %v)",
				i, d, ShortlistEpsilon, exact, fast)
		}
		if math.Abs(exact-threshold) > ShortlistEpsilon {
			if (exact > threshold) != (fast > threshold) {
				t.Errorf("utt %d: verdict flipped (exact %v, fast %v)", i, exact, fast)
			}
		}
	}
}

// TestShortlistSweep sweeps C ∈ {1, 2, 4, 8, full}: the mean |ΔLLR|
// against the exact path must shrink (within a small slack — the error
// is a difference of two truncation terms, so per-utterance monotonicity
// is not guaranteed, but the mean must trend down) and land at the
// quantization floor at C = full. Verdicts must match the exact path at
// every C ≥ DefaultShortlistC for utterances with margin beyond ε.
func TestShortlistSweep(t *testing.T) {
	f := loadMFCCFixture(t)
	ubm, spk := compileFixture(t, f)
	utts := f.testUtterances()
	exact := make([]float64, len(utts))
	for i, utt := range utts {
		exact[i] = f.verifier.Score(utt)
	}
	widths := []int{1, 2, 4, 8, f.ubm.NumComponents()}
	meanErr := make([]float64, len(widths))
	for w, c := range widths {
		var sum float64
		for i, utt := range utts {
			fast, err := ScoreShortlist(ubm, spk, utt, c)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(fast - exact[i])
			if c >= DefaultShortlistC && math.Abs(exact[i]) > ShortlistEpsilon {
				if (exact[i] > 0) != (fast > 0) {
					t.Errorf("C=%d utt %d: verdict flipped (exact %v, fast %v)", c, i, exact[i], fast)
				}
			}
		}
		meanErr[w] = sum / float64(len(utts))
	}
	t.Logf("mean |ΔLLR| by C: %v → %v", widths, meanErr)
	for w := 1; w < len(widths); w++ {
		if meanErr[w] > meanErr[w-1]+1e-3 {
			t.Errorf("mean |ΔLLR| grew from C=%d (%g) to C=%d (%g)",
				widths[w-1], meanErr[w-1], widths[w], meanErr[w])
		}
	}
	if floor := meanErr[len(widths)-1]; floor > 1e-3 {
		t.Errorf("C=full error %g above quantization floor", floor)
	}
	if meanErr[0] < meanErr[len(widths)-1] {
		t.Error("C=1 error below C=full error: sweep is not exercising truncation")
	}
}

// TestFastScoringDeterministic pins partition independence: the fan-out
// across workers must produce bit-identical shortlists and scores at any
// GOMAXPROCS, which is also what makes cross-request batching exact.
func TestFastScoringDeterministic(t *testing.T) {
	f := loadMFCCFixture(t)
	ubm, spk := compileFixture(t, f)
	frames := f.pool[:600] // above fastMinParallel, so the fan-out engages
	prev := runtime.GOMAXPROCS(1)
	serialSL, err := ubm.TopC(frames, DefaultShortlistC)
	if err != nil {
		runtime.GOMAXPROCS(prev)
		t.Fatal(err)
	}
	serialScore, err := ScoreShortlist(ubm, spk, frames, DefaultShortlistC)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	parSL, err := ubm.TopC(frames, DefaultShortlistC)
	if err != nil {
		t.Fatal(err)
	}
	parScore, err := ScoreShortlist(ubm, spk, frames, DefaultShortlistC)
	if err != nil {
		t.Fatal(err)
	}
	if serialScore != parScore {
		t.Errorf("score differs across worker counts: %v vs %v", serialScore, parScore)
	}
	for i := range serialSL.LL {
		if serialSL.LL[i] != parSL.LL[i] {
			t.Fatalf("frame %d LL differs: %v vs %v", i, serialSL.LL[i], parSL.LL[i])
		}
	}
	for i := range serialSL.Indices {
		if serialSL.Indices[i] != parSL.Indices[i] {
			t.Fatalf("index %d differs: %d vs %d", i, serialSL.Indices[i], parSL.Indices[i])
		}
	}
}

func TestTopCValidation(t *testing.T) {
	f := loadMFCCFixture(t)
	sm, _ := compileFixture(t, f)
	if _, err := sm.TopC(f.pool[:4], 0); err == nil {
		t.Error("C = 0 accepted")
	}
	if _, err := sm.TopC([][]float64{{1, 2}}, 2); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("dim mismatch: %v", err)
	}
	// C beyond the component count clamps to the full mixture.
	sl, err := sm.TopC(f.pool[:4], sm.NumComponents()+10)
	if err != nil {
		t.Fatal(err)
	}
	if sl.C != sm.NumComponents() {
		t.Errorf("C clamped to %d, want %d", sl.C, sm.NumComponents())
	}
	empty, err := sm.TopC(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(empty.MeanLL(), -1) {
		t.Errorf("empty input MeanLL = %v, want -Inf", empty.MeanLL())
	}
}

func TestShortlistScoringErrors(t *testing.T) {
	f := loadMFCCFixture(t)
	ubm, spk := compileFixture(t, f)
	frames := f.pool[:8]
	if _, err := spk.MeanLogLikelihoodShortlist(frames, nil); err == nil {
		t.Error("nil shortlist accepted")
	}
	sl, err := ubm.TopC(frames, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spk.MeanLogLikelihoodShortlist(frames[:4], sl); err == nil {
		t.Error("frame-count mismatch accepted")
	}
	if _, err := spk.MeanLogLikelihoodShortlist(frames, &Shortlist{C: 99}); err == nil {
		t.Error("oversized shortlist width accepted")
	}
	small, err := Train(f.pool[:200], TrainConfig{Components: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	smallSM, err := Compile(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScoreShortlist(ubm, smallSM, frames, 4); err == nil {
		t.Error("component-count mismatch accepted")
	}
	llr, err := ScoreShortlist(ubm, spk, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(llr, -1) {
		t.Errorf("empty frames LLR = %v, want -Inf", llr)
	}
}
