package gmm

import (
	"fmt"
	"sync"
	"time"
)

// Cross-request batching for the UBM pass of the fast scoring path.
// Concurrent verifies all score different frames against the same UBM;
// coalescing their frames into one matrix-shaped TopC call amortizes the
// fork-join fan-out and keeps every core on one model's cache-resident
// rows instead of context-switching between many small passes. Each
// frame's result is computed independently of its batch-mates, so a
// batched pass returns bit-for-bit the same shortlist each request would
// have computed alone — batching changes throughput, never scores.

// Default batching bounds.
const (
	// DefaultBatchWindow is how long the first request of a batch waits
	// for company before the batch flushes anyway. Half a millisecond is
	// invisible next to the pipeline's end-to-end latency and long enough
	// to coalesce concurrent arrivals.
	DefaultBatchWindow = 500 * time.Microsecond
	// DefaultBatchMaxFrames flushes a batch early once this many frames
	// are pending, bounding both latency under load and the size of the
	// concatenated scoring pass.
	DefaultBatchMaxFrames = 4096
)

// BatchConfig bounds a Batcher.
type BatchConfig struct {
	// Window is the maximum coalescing wait (default DefaultBatchWindow).
	Window time.Duration
	// MaxFrames flushes early at this many pending frames (default
	// DefaultBatchMaxFrames).
	MaxFrames int
	// TopC is the shortlist width of the batched pass (default
	// DefaultShortlistC).
	TopC int
	// OnFlush, when set, observes every flush: the number of requests
	// coalesced and the total frames scored. The serving layer feeds its
	// batch-size histogram through this without the batcher knowing any
	// metric names.
	OnFlush func(requests, frames int)
}

func (c *BatchConfig) setDefaults() {
	if c.Window <= 0 {
		c.Window = DefaultBatchWindow
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = DefaultBatchMaxFrames
	}
	if c.TopC == 0 {
		c.TopC = DefaultShortlistC
	}
}

// batchReq is one caller blocked on a flush.
type batchReq struct {
	frames [][]float64
	out    *Shortlist
	err    error
	done   chan struct{}
}

// Batcher coalesces concurrent UBM shortlist requests into bounded
// batches. Safe for concurrent use; Close flushes pending work, and
// submissions after Close degrade to direct (unbatched) scoring rather
// than blocking.
type Batcher struct {
	ubm *ScoringModel
	cfg BatchConfig

	mu      sync.Mutex
	pending []*batchReq
	frames  int
	timer   *time.Timer
	closed  bool
}

// NewBatcher builds a batcher over a compiled UBM.
func NewBatcher(ubm *ScoringModel, cfg BatchConfig) (*Batcher, error) {
	if ubm == nil {
		return nil, fmt.Errorf("gmm: batcher needs a compiled UBM")
	}
	cfg.setDefaults()
	if cfg.TopC < 1 {
		return nil, fmt.Errorf("gmm: batcher shortlist width %d, want ≥ 1", cfg.TopC)
	}
	return &Batcher{ubm: ubm, cfg: cfg}, nil
}

// ScoreUBM submits one request's frames and blocks until its batch
// flushes (at the window deadline or the frame bound, whichever first).
// The returned shortlist is bit-identical to ubm.TopC(frames, cfg.TopC).
func (b *Batcher) ScoreUBM(frames [][]float64) (*Shortlist, error) {
	// Validate before enqueueing so one malformed request cannot poison a
	// batch, and skip the queue entirely when there is nothing to score.
	if err := b.ubm.checkFrames(frames); err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return b.ubm.TopC(frames, b.cfg.TopC)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.ubm.TopC(frames, b.cfg.TopC)
	}
	req := &batchReq{frames: frames, done: make(chan struct{})}
	b.pending = append(b.pending, req)
	b.frames += len(frames)
	if b.frames >= b.cfg.MaxFrames {
		batch := b.takeLocked()
		b.mu.Unlock()
		b.run(batch)
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.cfg.Window, b.flushOnTimer)
		}
		b.mu.Unlock()
	}
	<-req.done
	return req.out, req.err
}

// QueueDepth returns the number of requests currently waiting for a
// batch flush (health/readiness reporting).
func (b *Batcher) QueueDepth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// PendingFrames returns the total frames currently queued.
func (b *Batcher) PendingFrames() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames
}

// takeLocked detaches the pending batch and disarms the window timer.
// Callers hold b.mu.
func (b *Batcher) takeLocked() []*batchReq {
	batch := b.pending
	b.pending = nil
	b.frames = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushOnTimer flushes whatever accumulated during the window. A batch
// already taken by the frame bound leaves nothing to do.
func (b *Batcher) flushOnTimer() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}

// run scores one batch with a single concatenated TopC pass and
// distributes the per-request slices. Every waiter is released exactly
// once.
func (b *Batcher) run(batch []*batchReq) {
	if len(batch) == 0 {
		return
	}
	total := 0
	for _, r := range batch {
		total += len(r.frames)
	}
	combined := make([][]float64, 0, total)
	for _, r := range batch {
		combined = append(combined, r.frames...)
	}
	sl, err := b.ubm.TopC(combined, b.cfg.TopC)
	off := 0
	for _, r := range batch {
		n := len(r.frames)
		if err != nil {
			r.err = fmt.Errorf("gmm: batched UBM pass: %w", err)
		} else {
			r.out = &Shortlist{
				C:       sl.C,
				LL:      sl.LL[off : off+n],
				Indices: sl.Indices[off*sl.C : (off+n)*sl.C],
			}
		}
		off += n
		close(r.done)
	}
	if b.cfg.OnFlush != nil {
		b.cfg.OnFlush(len(batch), total)
	}
}

// Close flushes pending requests and stops coalescing. Later ScoreUBM
// calls score directly; Close is idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	b.run(batch)
}
