//go:build amd64

package gmm

// quadSweep computes every component's Mahalanobis quadratic form for
// one padded frame: out[c] = Σ_d (xf[d]−means[c·stride+d])²·invVars[…].
// Implemented in assembly (sweep_amd64.s) with the exact summation
// order of quadSweepGeneric, so results are bit-identical to the
// portable fallback on every path: plain SSE (guaranteed on amd64) and
// an AVX2 variant taken when the CPU and OS support it and the row
// stride is a whole number of 8-dim double blocks. The AVX2 kernel uses
// no FMA — fusing would change rounding and break the bit contract.
func quadSweep(means, invVars, xf, out []float32, k, stride int) {
	if useAVX2 && stride%8 == 0 {
		quadSweepAVX2(means, invVars, xf, out, k, stride)
		return
	}
	quadSweepSSE(means, invVars, xf, out, k, stride)
}

//go:noescape
func quadSweepSSE(means, invVars, xf, out []float32, k, stride int)

//go:noescape
func quadSweepAVX2(means, invVars, xf, out []float32, k, stride int)

// topCSelect extracts the len(vals) largest scores in descending order
// (ties by lowest index) into vals, widened to float64, and their
// indices into idx, consuming the score buffer. The AVX2 kernel and the
// portable topCExtract implement the identical extraction procedure, so
// the choice never changes a single bit of the shortlist.
func topCSelect(scores []float32, vals []float64, idx []int32) {
	if useAVX2 && len(scores)%8 == 0 {
		topCSelectAVX2(scores, vals, idx)
		return
	}
	topCExtract(scores, vals, idx)
}

// scoreSelect turns raw quadratic forms into per-component log-densities
// (consts[i] − q[i]/2, computed in float32 so every score is an exact
// float32 value) and extracts the len(vals) best into vals/idx. At the
// serving mixture size (k = 32) an AVX2 machine takes a fused kernel
// that keeps the whole score vector in registers from conversion through
// extraction; every other shape converts in place and dispatches through
// topCSelect. All paths produce bit-identical output.
func scoreSelect(q, consts []float32, vals []float64, idx []int32) {
	if useAVX2 && len(q) == 32 {
		topCScore32AVX2(q, consts, vals, idx)
		return
	}
	consts = consts[:len(q)]
	for i := range q {
		q[i] = consts[i] - 0.5*q[i]
	}
	topCSelect(q, vals, idx)
}

//go:noescape
func topCSelectAVX2(scores []float32, vals []float64, idx []int32)

//go:noescape
func topCScore32AVX2(q, consts []float32, vals []float64, idx []int32)

// cpuidex and xgetbv0 (sweep_amd64.s) expose the CPUID leaf and the
// OS-enabled extended-state mask for the one-time AVX2 probe.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

var useAVX2 = detectAVX2()

// detectAVX2 reports whether AVX2 is usable: the CPU advertises it and
// the OS saves/restores the YMM state (OSXSAVE set and XCR0 bits 1–2).
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	if _, _, c, _ := cpuidex(1, 0); c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0
}
