//go:build amd64

package gmm

import (
	"math/rand"
	"testing"
)

// TestQuadSweepVariantsMatch pins both assembly kernels against the
// generic mirror directly — on an AVX2 machine the dispatcher would
// otherwise leave the SSE fallback untested, and vice versa.
func TestQuadSweepVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct{ k, stride int }{
		{32, 16}, {13, 16}, {6, 16}, {7, 8}, {3, 24}, {5, 4},
	} {
		means := make([]float32, tc.k*tc.stride)
		invVars := make([]float32, tc.k*tc.stride)
		xf := make([]float32, tc.stride)
		for i := range means {
			means[i] = float32(rng.NormFloat64())
			invVars[i] = float32(rng.Float64() + 0.1)
		}
		for i := range xf {
			xf[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, tc.k)
		quadSweepGeneric(means, invVars, xf, want, tc.k, tc.stride)
		got := make([]float32, tc.k)
		quadSweepSSE(means, invVars, xf, got, tc.k, tc.stride)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("SSE k=%d stride=%d comp %d: %x vs %x", tc.k, tc.stride, i, got[i], want[i])
			}
		}
		if useAVX2 && tc.stride%8 == 0 {
			for i := range got {
				got[i] = 0
			}
			quadSweepAVX2(means, invVars, xf, got, tc.k, tc.stride)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("AVX2 k=%d stride=%d comp %d: %x vs %x", tc.k, tc.stride, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopCSelectAVX2MatchesExtract pins the assembly extraction against
// the portable mirror, including duplicate scores (the tie rule) and
// c = k (full extraction).
func TestTopCSelectAVX2MatchesExtract(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(43))
	for _, tc := range []struct{ k, c int }{
		{32, 1}, {32, 8}, {32, 32}, {8, 3}, {64, 10},
	} {
		scores := make([]float32, tc.k)
		for i := range scores {
			scores[i] = float32(rng.NormFloat64())
		}
		// Inject duplicates so the lowest-index tie rule is exercised.
		scores[tc.k-1] = scores[0]
		if tc.k > 2 {
			scores[tc.k/2] = scores[1]
		}
		wantVals := make([]float64, tc.c)
		wantIdx := make([]int32, tc.c)
		topCExtract(append([]float32(nil), scores...), wantVals, wantIdx)
		gotVals := make([]float64, tc.c)
		gotIdx := make([]int32, tc.c)
		topCSelectAVX2(scores, gotVals, gotIdx)
		for r := 0; r < tc.c; r++ {
			if gotVals[r] != wantVals[r] || gotIdx[r] != wantIdx[r] {
				t.Errorf("k=%d c=%d round %d: got (%v, %d), want (%v, %d)",
					tc.k, tc.c, r, gotVals[r], gotIdx[r], wantVals[r], wantIdx[r])
			}
		}
	}
}

// TestTopCScore32MatchesScalar pins the fused k=32 score-and-select
// kernel against the scalar conversion + portable extraction, including
// duplicate quadratic forms (tie rule) and full extraction (c = 32).
func TestTopCScore32MatchesScalar(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	rng := rand.New(rand.NewSource(47))
	for _, c := range []int{1, 4, 8, 17, 32} {
		q := make([]float32, 32)
		consts := make([]float32, 32)
		for i := range q {
			q[i] = float32(rng.Float64() * 40)
			consts[i] = float32(rng.NormFloat64())
		}
		// Duplicate scores across blocks to exercise the tie rule.
		q[31], consts[31] = q[0], consts[0]
		q[17], consts[17] = q[2], consts[2]
		ref := append([]float32(nil), q...)
		for i := range ref {
			ref[i] = consts[i] - 0.5*ref[i]
		}
		wantVals := make([]float64, c)
		wantIdx := make([]int32, c)
		topCExtract(ref, wantVals, wantIdx)
		gotVals := make([]float64, c)
		gotIdx := make([]int32, c)
		topCScore32AVX2(append([]float32(nil), q...), consts, gotVals, gotIdx)
		for r := 0; r < c; r++ {
			if gotVals[r] != wantVals[r] || gotIdx[r] != wantIdx[r] {
				t.Errorf("c=%d round %d: got (%v, %d), want (%v, %d)",
					c, r, gotVals[r], gotIdx[r], wantVals[r], wantIdx[r])
			}
		}
	}
}
