package gmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// twoSpeakerData builds a tiny verification scenario: a background
// population plus two distinct "speakers" whose frames are Gaussian blobs
// at different locations.
func twoSpeakerData(rng *rand.Rand) (pool, spkA, spkB [][]float64) {
	centersBG := [][]float64{{0, 0}, {4, 4}, {-4, 2}, {2, -3}}
	pool = blobs(centersBG, 150, 1.2, rng)
	spkA = blobs([][]float64{{1.5, 1.5}, {-1, 2.5}}, 120, 0.7, rng)
	spkB = blobs([][]float64{{-2.5, -1.5}, {3, -2}}, 120, 0.7, rng)
	return pool, spkA, spkB
}

func TestMAPAdaptMovesMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pool, spkA, _ := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := MAPAdapt(ubm, spkA, 4)
	if err != nil {
		t.Fatal(err)
	}
	var moved float64
	for k := range adapted.Means {
		moved += math.Sqrt(sqDist(adapted.Means[k], ubm.Means[k]))
	}
	if moved < 0.1 {
		t.Errorf("adaptation barely moved means: %v", moved)
	}
	// Weights and variances unchanged (standard means-only recipe).
	for k := range adapted.Weights {
		if adapted.Weights[k] != ubm.Weights[k] {
			t.Error("weights must be unchanged")
		}
		for d := range adapted.Vars[k] {
			if adapted.Vars[k][d] != ubm.Vars[k][d] {
				t.Error("variances must be unchanged")
			}
		}
	}
}

func TestMAPAdaptRelevanceShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool, spkA, _ := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	low, err := MAPAdapt(ubm, spkA, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := MAPAdapt(ubm, spkA, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var dLow, dHigh float64
	for k := range ubm.Means {
		dLow += math.Sqrt(sqDist(low.Means[k], ubm.Means[k]))
		dHigh += math.Sqrt(sqDist(high.Means[k], ubm.Means[k]))
	}
	if dHigh >= dLow {
		t.Errorf("high relevance should shrink adaptation: %v >= %v", dHigh, dLow)
	}
}

func TestMAPAdaptErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pool, spkA, _ := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MAPAdapt(ubm, nil, 4); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("nil frames err = %v", err)
	}
	if _, err := MAPAdapt(ubm, spkA, 0); err == nil {
		t.Error("zero relevance should error")
	}
	if _, _, err := AccumulateStats(ubm, [][]float64{{1}}); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("dim mismatch err = %v", err)
	}
}

func TestVerifierSeparatesSpeakers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool, spkA, spkB := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(ubm, spkA[:80], 4)
	if err != nil {
		t.Fatal(err)
	}
	genuine := v.Score(spkA[80:])
	impostor := v.Score(spkB)
	if genuine <= impostor {
		t.Errorf("genuine score %v <= impostor score %v", genuine, impostor)
	}
	if genuine <= 0 {
		t.Errorf("genuine LLR should be positive, got %v", genuine)
	}
	if s := v.Score(nil); !math.IsInf(s, -1) {
		t.Errorf("empty test should score -Inf, got %v", s)
	}
}

func TestNewVerifierError(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pool, _, _ := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVerifier(ubm, nil, 4); err == nil {
		t.Error("expected enrollment error")
	}
}

func TestAccumulateStatsTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pool, spkA, _ := twoSpeakerData(rng)
	ubm, err := TrainUBM(pool, TrainConfig{Components: 4, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	n, first, err := AccumulateStats(ubm, spkA)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range n {
		if v < 0 {
			t.Fatal("negative count")
		}
		total += v
	}
	if math.Abs(total-float64(len(spkA))) > 1e-6 {
		t.Errorf("counts sum to %v, want %d", total, len(spkA))
	}
	// First-order stats sum to the data sum.
	var wantX, gotX float64
	for _, x := range spkA {
		wantX += x[0]
	}
	for c := range first {
		gotX += first[c][0]
	}
	if math.Abs(wantX-gotX) > 1e-6*math.Abs(wantX) {
		t.Errorf("first-order x sum %v, want %v", gotX, wantX)
	}
}
