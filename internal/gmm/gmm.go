// Package gmm implements the speaker-verification back-end the paper
// adopts from the Spear toolbox: diagonal-covariance Gaussian mixture
// models trained by EM, a universal background model (UBM), MAP-adapted
// speaker models with log-likelihood-ratio scoring, and a simplified
// inter-session variability (ISV) back-end that compensates session
// effects in GMM mean-supervector space.
package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/parallel"
	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// GMM is a mixture of diagonal-covariance Gaussians.
type GMM struct {
	// Weights are the mixture weights (sum to 1).
	Weights []float64
	// Means holds one mean vector per component.
	Means [][]float64
	// Vars holds the per-dimension variances per component.
	Vars [][]float64

	// logNorm caches the per-component Gaussian normalization constants.
	logNorm []float64
}

// NumComponents returns the mixture size.
func (g *GMM) NumComponents() int { return len(g.Weights) }

// Dim returns the feature dimensionality.
func (g *GMM) Dim() int {
	if len(g.Means) == 0 {
		return 0
	}
	return len(g.Means[0])
}

// varFloor keeps variances strictly positive during EM.
const varFloor = 1e-4

// ErrBadTrainingData is returned when training data is insufficient.
var ErrBadTrainingData = errors.New("gmm: insufficient or inconsistent training data")

// TrainConfig controls EM training.
type TrainConfig struct {
	// Components is the mixture size.
	Components int
	// MaxIter bounds the number of EM iterations (default 25).
	MaxIter int
	// Tol stops EM when the mean log-likelihood improves by less than
	// this amount (default 1e-4).
	Tol float64
	// Seed seeds k-means initialization.
	Seed int64
}

func (c *TrainConfig) setDefaults() {
	if c.MaxIter == 0 {
		c.MaxIter = 25
	}
	if stats.IsZero(c.Tol) {
		c.Tol = 1e-4
	}
}

// Train fits a GMM to data (rows are frames) using k-means initialization
// followed by EM.
func Train(data [][]float64, cfg TrainConfig) (*GMM, error) {
	cfg.setDefaults()
	if cfg.Components < 1 {
		return nil, fmt.Errorf("%w: %d components", ErrBadTrainingData, cfg.Components)
	}
	if len(data) < cfg.Components*2 {
		return nil, fmt.Errorf("%w: %d frames for %d components", ErrBadTrainingData, len(data), cfg.Components)
	}
	dim := len(data[0])
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row %d has dim %d, want %d", ErrBadTrainingData, i, len(row), dim)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := kmeansInit(data, cfg.Components, rng)
	g.refreshNorm()

	prev := math.Inf(-1)
	tile := newRespTile(len(data), cfg.Components)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step accumulators. Responsibilities are computed tile by tile
		// with the per-frame posteriors fanned out across cores, then
		// accumulated serially in frame order — bit-identical to the
		// fully serial loop regardless of worker count.
		n := make([]float64, cfg.Components)
		sum := newMatrix(cfg.Components, dim)
		sqsum := newMatrix(cfg.Components, dim)
		var total float64
		for base := 0; base < len(data); base += tile.size() {
			cnt := tile.compute(g, data, base)
			for i := 0; i < cnt; i++ {
				total += tile.ll[i]
				resp := tile.resp[i]
				x := data[base+i]
				for k := 0; k < cfg.Components; k++ {
					r := resp[k]
					if stats.IsZero(r) {
						continue
					}
					n[k] += r
					for d, v := range x {
						sum[k][d] += r * v
						sqsum[k][d] += r * v * v
					}
				}
			}
		}
		// M-step.
		for k := 0; k < cfg.Components; k++ {
			if n[k] < 1e-8 {
				// Dead component: re-seed on a random frame.
				x := data[rng.Intn(len(data))]
				copy(g.Means[k], x)
				for d := range g.Vars[k] {
					g.Vars[k][d] = 1
				}
				g.Weights[k] = 1e-4
				continue
			}
			g.Weights[k] = n[k] / float64(len(data))
			for d := 0; d < dim; d++ {
				mu := sum[k][d] / n[k]
				g.Means[k][d] = mu
				v := sqsum[k][d]/n[k] - mu*mu
				if v < varFloor {
					v = varFloor
				}
				g.Vars[k][d] = v
			}
		}
		normalizeWeights(g.Weights)
		g.refreshNorm()

		mean := total / float64(len(data))
		if mean-prev < cfg.Tol && iter > 0 {
			break
		}
		prev = mean
	}
	return g, nil
}

// kmeansInit runs a few iterations of k-means and converts the result to
// an initial mixture.
func kmeansInit(data [][]float64, k int, rng *rand.Rand) *GMM {
	dim := len(data[0])
	centers := newMatrix(k, dim)
	// k-means++ seeding: spread the initial centers proportionally to the
	// squared distance from the nearest chosen center, which avoids the
	// classic local optimum of two seeds landing in one cluster.
	copy(centers[0], data[rng.Intn(len(data))])
	minD := make([]float64, len(data))
	for i, x := range data {
		minD[i] = sqDist(x, centers[0])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minD {
			total += d
		}
		idx := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, d := range minD {
				r -= d
				if r <= 0 {
					idx = i
					break
				}
			}
		} else {
			idx = rng.Intn(len(data))
		}
		copy(centers[c], data[idx])
		for i, x := range data {
			if d := sqDist(x, centers[c]); d < minD[i] {
				minD[i] = d
			}
		}
	}
	assign := make([]int, len(data))
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i, x := range data {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(x, centers[c])
				if d < bestD {
					bestD = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		next := newMatrix(k, dim)
		for i, x := range data {
			c := assign[i]
			counts[c]++
			for d, v := range x {
				next[c][d] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				copy(next[c], data[rng.Intn(len(data))])
				continue
			}
			for d := range next[c] {
				next[c][d] /= float64(counts[c])
			}
		}
		centers = next
		if !changed && iter > 0 {
			break
		}
	}
	// Convert to GMM: cluster variances and proportional weights.
	g := &GMM{
		Weights: make([]float64, k),
		Means:   centers,
		Vars:    newMatrix(k, dim),
	}
	counts := make([]int, k)
	for i, x := range data {
		c := assign[i]
		counts[c]++
		for d, v := range x {
			diff := v - centers[c][d]
			g.Vars[c][d] += diff * diff
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			g.Weights[c] = 1e-4
			for d := range g.Vars[c] {
				g.Vars[c][d] = 1
			}
			continue
		}
		g.Weights[c] = float64(counts[c]) / float64(len(data))
		for d := range g.Vars[c] {
			g.Vars[c][d] /= float64(counts[c])
			if g.Vars[c][d] < varFloor {
				g.Vars[c][d] = varFloor
			}
		}
	}
	normalizeWeights(g.Weights)
	return g
}

// refreshNorm recomputes the cached log normalization constants.
func (g *GMM) refreshNorm() {
	k := g.NumComponents()
	dim := g.Dim()
	if g.logNorm == nil || len(g.logNorm) != k {
		g.logNorm = make([]float64, k)
	}
	for c := 0; c < k; c++ {
		var logDet float64
		for d := 0; d < dim; d++ {
			logDet += math.Log(g.Vars[c][d])
		}
		g.logNorm[c] = -0.5 * (float64(dim)*math.Log(2*math.Pi) + logDet)
	}
}

// componentLogLik returns log w_c + log N(x; mu_c, var_c).
func (g *GMM) componentLogLik(c int, x []float64) float64 {
	if g.logNorm == nil {
		g.refreshNorm()
	}
	var maha float64
	mu := g.Means[c]
	va := g.Vars[c]
	for d, v := range x {
		diff := v - mu[d]
		maha += diff * diff / va[d]
	}
	return math.Log(g.Weights[c]+1e-300) + g.logNorm[c] - 0.5*maha
}

// LogLikelihood returns log p(x) under the mixture.
func (g *GMM) LogLikelihood(x []float64) float64 {
	return g.logLikelihoodInto(x, make([]float64, g.NumComponents()))
}

// logLikelihoodInto is LogLikelihood with caller-provided scratch for the
// per-component terms, so scoring loops can evaluate frames without
// allocating. len(lls) must equal NumComponents.
func (g *GMM) logLikelihoodInto(x, lls []float64) float64 {
	maxv := math.Inf(-1)
	// Two passes: find max for a stable log-sum-exp.
	for c := range lls {
		lls[c] = g.componentLogLik(c, x)
		if lls[c] > maxv {
			maxv = lls[c]
		}
	}
	var sum float64
	for _, v := range lls {
		sum += math.Exp(v - maxv)
	}
	return maxv + math.Log(sum)
}

// ensureNorm materializes the cached normalization constants before a
// parallel region. componentLogLik refreshes the cache lazily, which is
// fine serially but would race when frames fan out across workers.
func (g *GMM) ensureNorm() {
	if g.logNorm == nil {
		g.refreshNorm()
	}
}

// MeanLogLikelihood returns the average frame log-likelihood of a feature
// matrix. Frames are scored in parallel with per-worker scratch; the
// per-frame values are then summed serially in frame order, so the result
// is bit-identical to the serial loop regardless of worker count.
func (g *GMM) MeanLogLikelihood(frames [][]float64) float64 {
	return g.MeanLogLikelihoodSpan(nil, frames)
}

// MeanLogLikelihoodSpan is MeanLogLikelihood recording its fan-out under
// span: the span (nil disables tracing at zero cost) gains the scoring
// shape as attributes and one "loglik-block" child per worker block. The
// caller owns span's End; the result is bit-identical to
// MeanLogLikelihood.
func (g *GMM) MeanLogLikelihoodSpan(span *telemetry.Span, frames [][]float64) float64 {
	if len(frames) == 0 {
		return math.Inf(-1)
	}
	g.ensureNorm()
	k := g.NumComponents()
	span.SetInt("frames", int64(len(frames)))
	span.SetInt("components", int64(k))
	lls := make([]float64, len(frames))
	parallel.SpanRange(span, "loglik-block", len(frames), func(lo, hi int) {
		scratch := make([]float64, k)
		for i := lo; i < hi; i++ {
			lls[i] = g.logLikelihoodInto(frames[i], scratch)
		}
	})
	var s float64
	for _, v := range lls {
		s += v
	}
	return s / float64(len(frames))
}

// responsibilities fills resp with posterior component probabilities for x
// and returns log p(x).
func (g *GMM) responsibilities(x []float64, resp []float64) float64 {
	k := g.NumComponents()
	maxv := math.Inf(-1)
	for c := 0; c < k; c++ {
		resp[c] = g.componentLogLik(c, x)
		if resp[c] > maxv {
			maxv = resp[c]
		}
	}
	var sum float64
	for c := 0; c < k; c++ {
		resp[c] = math.Exp(resp[c] - maxv)
		sum += resp[c]
	}
	for c := 0; c < k; c++ {
		resp[c] /= sum
	}
	return maxv + math.Log(sum)
}

// respTileFrames bounds the scratch footprint of a tiled E-step: posteriors
// are computed for at most this many frames at a time.
const respTileFrames = 512

// respTile is a reusable block of per-frame responsibilities and frame
// log-likelihoods. compute fans the posterior evaluation for one tile of
// frames out across cores; the caller then accumulates the tile serially
// in frame order, which keeps the overall reduction bit-identical to a
// fully serial E-step.
type respTile struct {
	resp [][]float64
	ll   []float64
}

func newRespTile(frames, components int) *respTile {
	n := frames
	if n > respTileFrames {
		n = respTileFrames
	}
	return &respTile{resp: newMatrix(n, components), ll: make([]float64, n)}
}

func (t *respTile) size() int { return len(t.ll) }

// compute fills the tile with posteriors for data[base : base+cnt] and
// returns cnt, the number of frames covered.
func (t *respTile) compute(g *GMM, data [][]float64, base int) int {
	cnt := len(data) - base
	if cnt > t.size() {
		cnt = t.size()
	}
	g.ensureNorm()
	parallel.Range(cnt, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.ll[i] = g.responsibilities(data[base+i], t.resp[i])
		}
	})
	return cnt
}

// Clone returns a deep copy of the model.
func (g *GMM) Clone() *GMM {
	out := &GMM{
		Weights: append([]float64(nil), g.Weights...),
		Means:   newMatrix(len(g.Means), g.Dim()),
		Vars:    newMatrix(len(g.Vars), g.Dim()),
	}
	for i := range g.Means {
		copy(out.Means[i], g.Means[i])
		copy(out.Vars[i], g.Vars[i])
	}
	out.refreshNorm()
	return out
}

func newMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i] = backing[i*cols : (i+1)*cols]
	}
	return m
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if stats.IsZero(s) {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}
