package gmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs samples n points per center from isotropic Gaussians.
func blobs(centers [][]float64, n int, sigma float64, rng *rand.Rand) [][]float64 {
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < n; i++ {
			row := make([]float64, len(c))
			for d, v := range c {
				row[d] = v + sigma*rng.NormFloat64()
			}
			out = append(out, row)
		}
	}
	return out
}

func TestTrainRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	data := blobs(centers, 300, 0.5, rng)
	g, err := Train(data, TrainConfig{Components: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every true center should be close to some component mean.
	for _, c := range centers {
		best := math.Inf(1)
		for k := 0; k < 3; k++ {
			if d := sqDist(c, g.Means[k]); d < best {
				best = d
			}
		}
		if best > 0.25 {
			t.Errorf("center %v not recovered (nearest mean dist² %v)", c, best)
		}
	}
	// Weights near 1/3 each.
	for k, w := range g.Weights {
		if math.Abs(w-1.0/3) > 0.05 {
			t.Errorf("weight %d = %v", k, w)
		}
	}
}

func TestTrainWeightsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := blobs([][]float64{{0, 0}, {5, 5}}, 60, 1, rng)
		g, err := Train(data, TrainConfig{Components: 4, Seed: seed})
		if err != nil {
			return false
		}
		var s float64
		for _, w := range g.Weights {
			if w < 0 {
				return false
			}
			s += w
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTrainErrors(t *testing.T) {
	data := blobs([][]float64{{0}}, 5, 1, rand.New(rand.NewSource(1)))
	if _, err := Train(data, TrainConfig{Components: 0}); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("err = %v", err)
	}
	if _, err := Train(data, TrainConfig{Components: 10}); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("err = %v", err)
	}
	ragged := [][]float64{{1, 2}, {1}, {3, 4}, {5, 6}, {7, 8}, {9, 0}}
	if _, err := Train(ragged, TrainConfig{Components: 2}); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestLogLikelihoodHigherOnData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := blobs([][]float64{{0, 0}}, 500, 1, rng)
	g, err := Train(data, TrainConfig{Components: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	onData := g.LogLikelihood([]float64{0.1, -0.2})
	offData := g.LogLikelihood([]float64{50, 50})
	if onData <= offData {
		t.Errorf("ll on data %v <= off data %v", onData, offData)
	}
}

func TestLogLikelihoodIsProperDensity1D(t *testing.T) {
	// Numerically integrate exp(ll) over a grid; should be ~1.
	rng := rand.New(rand.NewSource(4))
	data := blobs([][]float64{{-2}, {3}}, 400, 0.7, rng)
	g, err := Train(data, TrainConfig{Components: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	const step = 0.01
	for x := -15.0; x < 15; x += step {
		integral += math.Exp(g.LogLikelihood([]float64{x})) * step
	}
	if math.Abs(integral-1) > 0.02 {
		t.Errorf("density integrates to %v, want 1", integral)
	}
}

func TestMeanLogLikelihoodEmpty(t *testing.T) {
	g := &GMM{Weights: []float64{1}, Means: [][]float64{{0}}, Vars: [][]float64{{1}}}
	if v := g.MeanLogLikelihood(nil); !math.IsInf(v, -1) {
		t.Errorf("empty = %v, want -Inf", v)
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := blobs([][]float64{{0, 0}, {8, 8}}, 100, 1, rng)
	g, err := Train(data, TrainConfig{Components: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp := make([]float64, 3)
	for _, x := range data[:20] {
		g.responsibilities(x, resp)
		var s float64
		for _, r := range resp {
			if r < 0 {
				t.Fatal("negative responsibility")
			}
			s += r
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("responsibilities sum to %v", s)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := blobs([][]float64{{0, 0}}, 50, 1, rng)
	g, err := Train(data, TrainConfig{Components: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	c.Means[0][0] = 999
	if g.Means[0][0] == 999 {
		t.Error("Clone must deep-copy means")
	}
	if c.NumComponents() != g.NumComponents() || c.Dim() != g.Dim() {
		t.Error("Clone changed shape")
	}
}

func TestDimEmpty(t *testing.T) {
	g := &GMM{}
	if g.Dim() != 0 || g.NumComponents() != 0 {
		t.Error("empty model dims")
	}
}

func TestTrainDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := blobs([][]float64{{0, 0}, {5, 5}}, 100, 1, rng)
	g1, err := Train(data, TrainConfig{Components: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Train(data, TrainConfig{Components: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for k := range g1.Means {
		for d := range g1.Means[k] {
			if g1.Means[k][d] != g2.Means[k][d] {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

func BenchmarkLogLikelihood(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := blobs([][]float64{{0, 0, 0, 0}}, 200, 1, rng)
	g, err := Train(data, TrainConfig{Components: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := data[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LogLikelihood(x)
	}
}
