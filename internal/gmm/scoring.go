package gmm

// Fast scoring path: the classic GMM-UBM top-C shortlist over a
// precompiled, quantized model layout.
//
// The exact path (MeanLogLikelihood / Verifier.Score) walks the
// [][]float64 model in float64, recomputes log-weights per frame and
// runs a full log-sum-exp over every component of both the speaker model
// and the UBM. The fast path compiles a GMM once into a ScoringModel — a
// flat float32 structure-of-arrays holding means and inverse variances
// (multiplication instead of per-dimension division), with the
// per-component constant log w_c − ½(D·log 2π + Σ log σ²) precomputed in
// float64 — and then scores each frame against the full UBM a single
// time, keeps the C best-scoring components, and evaluates the
// MAP-adapted speaker model on only those C components.
// Speaker components are index-aligned with the UBM by construction
// (MAPAdapt clones the UBM and moves means only), which is what makes
// the shortlist transferable between the two models.
//
// Accuracy contract: the shortlist log-likelihood drops the probability
// mass outside the top C components of each frame, and the quantized
// layout rounds model parameters to float32. Both effects largely cancel
// in the log-likelihood ratio because speaker and UBM share the same
// shortlist and nearly the same parameters; equivalence tests pin
// |ΔLLR| ≤ ShortlistEpsilon against the exact path at the default C, and
// verdicts are identical whenever |score − threshold| > ShortlistEpsilon.
// The exact path is retained and remains the default everywhere.

import (
	"bytes"
	"fmt"
	"math"

	"voiceguard/internal/evidence"
	"voiceguard/internal/parallel"
)

// DefaultShortlistC is the default shortlist width: the C best UBM
// components scored against the speaker model per frame. Eight of the
// standard 32 components keeps |ΔLLR| well under ShortlistEpsilon on
// every corpus in the tree while cutting the speaker pass to C/K of its
// exact cost. (Four suffices on CMVN-normalized features, but the ASV
// front-end runs with CMVN off — see SpeakerVerifierConfig — and the
// wider per-frame spread there needs C=8 to hold the ε bound.)
const DefaultShortlistC = 8

// ShortlistEpsilon bounds |ΔLLR| between the fast path (top-C shortlist
// over the float32 layout, at C ≥ DefaultShortlistC) and the exact
// float64 path, in nats per frame. Equivalence tests assert it; callers
// comparing a fast-path score against a threshold get the exact path's
// verdict whenever the margin exceeds this bound.
const ShortlistEpsilon = 0.02

// ScoringLayout names the compiled layout version. It is part of the
// fast path's provenance digest so an evidence pack records which
// compiled form served a decision.
const ScoringLayout = "f32-soa-v1"

// fastMinParallel is the frame count below which the compiled kernels
// run serially: at ~150 ns/frame the fork-join overhead only pays for
// itself on batched scoring passes, not on one short utterance.
const fastMinParallel = 256

// ScoringModel is a GMM compiled for the fast scoring path: quantized
// float32 means and inverse variances in a flat structure-of-arrays
// layout (rows padded to a multiple of four so the inner loop unrolls
// without a tail), plus float64 per-component additive constants. Build
// one with Compile and reuse it; the model is immutable and safe for
// concurrent use.
type ScoringModel struct {
	k, dim   int
	stride   int       // dim rounded up to a multiple of 4
	means    []float32 // k rows × stride, padded with zeros
	invVars  []float32 // k rows × stride, padded with zeros
	consts   []float64 // per component: log w + logNorm
	consts32 []float32 // consts quantized once, for the selection loop
	digest   string    // content digest of the source model
}

// ModelDigest returns the canonical content digest of a GMM — the digest
// of its persisted form, identical to the "asv/user/<name>" digests an
// evidence pack records for the same model.
func ModelDigest(g *GMM) (string, error) {
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		return "", fmt.Errorf("gmm: digesting model: %w", err)
	}
	return evidence.Digest(buf.Bytes()), nil
}

// Compile builds the fast-path scoring form of a model. The compiled
// model is content-addressed: Digest returns the source model's
// canonical digest, so caches can key compiled models by the exact
// trained state they were built from.
func Compile(g *GMM) (*ScoringModel, error) {
	k, dim := g.NumComponents(), g.Dim()
	if k == 0 || dim == 0 {
		return nil, fmt.Errorf("%w: cannot compile an empty model", ErrBadTrainingData)
	}
	if len(g.Means) != k || len(g.Vars) != k {
		return nil, fmt.Errorf("%w: %d weights, %d means, %d variances",
			ErrBadTrainingData, k, len(g.Means), len(g.Vars))
	}
	dig, err := ModelDigest(g)
	if err != nil {
		return nil, err
	}
	g.ensureNorm()
	stride := (dim + 3) &^ 3
	m := &ScoringModel{
		k: k, dim: dim, stride: stride,
		means:    make([]float32, k*stride),
		invVars:  make([]float32, k*stride),
		consts:   make([]float64, k),
		consts32: make([]float32, k),
		digest:   dig,
	}
	for c := 0; c < k; c++ {
		if len(g.Means[c]) != dim || len(g.Vars[c]) != dim {
			return nil, fmt.Errorf("%w: component %d has inconsistent dimensionality",
				ErrBadTrainingData, c)
		}
		base := c * stride
		for d := 0; d < dim; d++ {
			m.means[base+d] = float32(g.Means[c][d])
			m.invVars[base+d] = float32(1 / g.Vars[c][d])
		}
		// Padding dimensions keep zero means and zero inverse variances,
		// so they contribute nothing to the quadratic form.
		m.consts[c] = math.Log(g.Weights[c]+1e-300) + g.logNorm[c]
		m.consts32[c] = float32(m.consts[c])
	}
	return m, nil
}

// Digest returns the content digest of the source model this compiled
// form was built from.
func (m *ScoringModel) Digest() string { return m.digest }

// NumComponents returns the mixture size.
func (m *ScoringModel) NumComponents() int { return m.k }

// Dim returns the feature dimensionality.
func (m *ScoringModel) Dim() int { return m.dim }

// SizeBytes returns the resident size of the compiled arrays — what a
// model cache accounts against its resident-bytes gauge.
func (m *ScoringModel) SizeBytes() int {
	return 4*(len(m.means)+len(m.invVars)) + 8*len(m.consts) + 64
}

// Shortlist is the per-frame result of one UBM top-C pass: the UBM
// log-likelihood of each frame restricted to its C best components, and
// the flat frame-major index list (Indices[f*C : (f+1)*C], in
// descending score order, ties by lowest component index) identifying
// those components. A speaker model with the same component count
// scores the shortlist via MeanLogLikelihoodShortlist, which takes its
// own per-frame max and so never depends on the ordering.
type Shortlist struct {
	// C is the shortlist width per frame.
	C int
	// LL holds the per-frame UBM log-likelihood over the top C components.
	LL []float64
	// Indices holds C component indices per frame, frame-major.
	Indices []int32
}

// MeanLL returns the frame-averaged UBM log-likelihood of the shortlist
// pass. Empty input scores -Inf, matching the exact path.
func (s *Shortlist) MeanLL() float64 {
	if len(s.LL) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, v := range s.LL {
		sum += v
	}
	return sum / float64(len(s.LL))
}

// checkFrames validates frame dimensionality against the model.
func (m *ScoringModel) checkFrames(frames [][]float64) error {
	for i, x := range frames {
		if len(x) != m.dim {
			return fmt.Errorf("%w: frame %d has dim %d, want %d", ErrBadTrainingData, i, len(x), m.dim)
		}
	}
	return nil
}

// padFrame quantizes one frame into the padded float32 scratch row. The
// padding entries are zeroed at allocation and never written, so reusing
// the scratch across same-dimension frames is safe.
func (m *ScoringModel) padFrame(x []float64, xf []float32) {
	for d, v := range x {
		xf[d] = float32(v)
	}
}

// quadForm accumulates the full Mahalanobis quadratic form of a padded
// frame against one component, unrolled four dimensions at a time with
// two independent accumulator chains and no early exit — the kernel for
// components that must be scored completely (shortlist fill phase and
// speaker-side shortlist evaluation).
func (m *ScoringModel) quadForm(comp int, xf []float32) float32 {
	base := comp * m.stride
	end := base + m.stride
	mu := m.means[base:end:end]
	iv := m.invVars[base:end:end]
	x := xf
	var s0, s1 float32
	for len(mu) >= 4 && len(iv) >= 4 && len(x) >= 4 {
		d0 := x[0] - mu[0]
		d1 := x[1] - mu[1]
		d2 := x[2] - mu[2]
		d3 := x[3] - mu[3]
		s0 += d0*d0*iv[0] + d2*d2*iv[2]
		s1 += d1*d1*iv[1] + d3*d3*iv[3]
		mu, iv, x = mu[4:], iv[4:], x[4:]
	}
	return s0 + s1
}

// quadSweepGeneric is the portable reference for the quadSweep kernel:
// every component's quadratic form for one padded frame, in the kernel's
// fixed summation order (even 4-dim blocks and odd blocks accumulate
// into separate lane vectors, lanes reduce as (l0+l2)+(l1+l3)). The SSE
// implementation reproduces this order exactly, so both produce
// identical bits.
func quadSweepGeneric(means, invVars, xf, out []float32, k, stride int) {
	var even, odd [4]float32
	for comp := 0; comp < k; comp++ {
		base := comp * stride
		even = [4]float32{}
		odd = [4]float32{}
		for j := 0; j < stride; j += 8 {
			for l := 0; l < 4; l++ {
				d := xf[j+l] - means[base+j+l]
				even[l] += d * d * invVars[base+j+l]
			}
			if j+8 <= stride {
				for l := 0; l < 4; l++ {
					d := xf[j+4+l] - means[base+j+4+l]
					odd[l] += d * d * invVars[base+j+4+l]
				}
			}
		}
		for l := 0; l < 4; l++ {
			even[l] += odd[l]
		}
		out[comp] = (even[0] + even[2]) + (even[1] + even[3])
	}
}

// topCFrame scores one padded frame against every component — one sweep
// of quadratic forms (SSE on amd64, four dimensions per instruction)
// plus the precompiled constants — and keeps the c best in vals/idx
// (descending score order), returning the frame log-likelihood
// restricted to the shortlist. The sweep is deliberately branch-free:
// profiling shows that at serving mixture sizes a straight arithmetic
// pass through the flat float32 layout beats every pruning scheme tried
// (partial-distance elimination, best-first bounds), because component
// log-densities cluster too tightly for upper bounds to reject work.
// Scores compare in float32 (they are exact float32 values, so
// selection loses nothing; vals receives them widened). The quadratic
// forms are rewritten in place into scores, and selection runs as c
// rounds of max-extraction — find the maximum, record it, overwrite it
// with −Inf — which is branch-predictable end to end and vectorizes
// (topCSelect dispatches to an AVX2 kernel on amd64; topCExtract is its
// bit-exact portable mirror). Ties keep the lowest component index.
// idx receives exactly c indices in descending score order; qbuf is
// NumComponents-sized scratch; vals must have length ≥ c.
func (m *ScoringModel) topCFrame(xf []float32, c int, vals []float64, idx []int32, qbuf []float32) float64 {
	quadSweep(m.means, m.invVars, xf, qbuf, m.k, m.stride)
	scoreSelect(qbuf[:m.k], m.consts32[:m.k], vals[:c], idx[:c])
	return logSumExpSorted(vals[:c])
}

// topCExtract is the portable top-C selection: c rounds of
// find-max / record / knock-out over the score buffer (destroyed in the
// process). The amd64 AVX2 kernel implements exactly this procedure —
// same extraction order, same lowest-index tie rule — so shortlists are
// bit-identical across implementations.
func topCExtract(scores []float32, vals []float64, idx []int32) {
	negInf := float32(math.Inf(-1))
	for r := range vals {
		maxAt := 0
		for j := 1; j < len(scores); j++ {
			if scores[j] > scores[maxAt] {
				maxAt = j
			}
		}
		vals[r] = float64(scores[maxAt])
		idx[r] = int32(maxAt)
		scores[maxAt] = negInf
	}
}

// logSumExpSorted computes log Σ exp(vals) over a descending-sorted
// shortlist. The max term needs no exponential, and once a term drops
// more than expCutoff below the max, it and everything after it (sorted)
// cannot move the sum by a representable amount.
func logSumExpSorted(vals []float64) float64 {
	if len(vals) == 0 {
		return math.Inf(-1)
	}
	sum := 1.0
	for i := 1; i < len(vals); i++ {
		d := vals[i] - vals[0]
		if d < -expCutoff {
			break
		}
		sum += expNeg(d)
	}
	return vals[0] + math.Log(sum)
}

// expCutoff is where exp(d) stops affecting a log-sum-exp whose leading
// term is 1: exp(-30) ≈ 9e-14 perturbs the frame log-likelihood about
// twelve decimal digits below the shortlist truncation itself.
const expCutoff = 30

// expNeg computes e^x for x ∈ [-expCutoff, 0] with float32-grade
// accuracy: x is split as k·ln2 + r with r ∈ [-ln2/2, ln2/2], e^r comes
// from a degree-5 Taylor polynomial (relative error < 3e-6, far inside
// the fast path's float32 quantization noise) and the 2^k scale is
// assembled directly into the float64 exponent field. Plain float64
// arithmetic — deterministic across platforms, unlike a libm call it
// costs a handful of cycles on the hot logsumexp.
func expNeg(x float64) float64 {
	k := math.Floor(x*math.Log2E + 0.5)
	r := x - k*math.Ln2
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120)))))
	return p * math.Float64frombits(uint64(1023+int64(k))<<52)
}

// TopC runs the UBM pass of the fast path: every frame is scored against
// the full model once and its C best components are kept. Frames fan out
// across cores for large inputs (batched passes); the per-frame results
// are independent of the partition, so the output is bit-identical at
// any worker count — and a batched pass over concatenated requests
// returns exactly the bits each request would have computed alone. c is
// clamped to the component count; c = NumComponents makes LL the full
// (quantized) log-likelihood.
func (m *ScoringModel) TopC(frames [][]float64, c int) (*Shortlist, error) {
	if c < 1 {
		return nil, fmt.Errorf("gmm: shortlist width %d, want ≥ 1", c)
	}
	if c > m.k {
		c = m.k
	}
	if err := m.checkFrames(frames); err != nil {
		return nil, err
	}
	sl := &Shortlist{C: c, LL: make([]float64, len(frames)), Indices: make([]int32, len(frames)*c)}
	parallel.RangeMin(len(frames), fastMinParallel, func(lo, hi int) {
		xf := make([]float32, m.stride)
		qbuf := make([]float32, m.k)
		vals := make([]float64, c)
		for i := lo; i < hi; i++ {
			m.padFrame(frames[i], xf)
			sl.LL[i] = m.topCFrame(xf, c, vals, sl.Indices[i*c:(i+1)*c], qbuf)
		}
	})
	return sl, nil
}

// MeanLogLikelihood is the quantized full-mixture counterpart of
// (*GMM).MeanLogLikelihood: every component participates, only the
// float32 layout separates it from the exact path. It exists for
// equivalence testing and as the C = NumComponents end of the shortlist
// sweep. Empty input scores -Inf.
func (m *ScoringModel) MeanLogLikelihood(frames [][]float64) (float64, error) {
	sl, err := m.TopC(frames, m.k)
	if err != nil {
		return 0, err
	}
	return sl.MeanLL(), nil
}

// MeanLogLikelihoodShortlist evaluates this model on another model's
// shortlist: for each frame, only the C listed components are scored and
// log-sum-exp'd. The shortlist must come from a model with the same
// component count (the MAP-adapted speaker model and its UBM by
// construction). Empty input scores -Inf.
func (m *ScoringModel) MeanLogLikelihoodShortlist(frames [][]float64, sl *Shortlist) (float64, error) {
	if sl == nil {
		return 0, fmt.Errorf("gmm: nil shortlist")
	}
	if sl.C < 1 || sl.C > m.k {
		return 0, fmt.Errorf("gmm: shortlist width %d for a %d-component model", sl.C, m.k)
	}
	if len(sl.Indices) != len(frames)*sl.C {
		return 0, fmt.Errorf("gmm: shortlist covers %d frames, scoring %d", len(sl.Indices)/sl.C, len(frames))
	}
	if err := m.checkFrames(frames); err != nil {
		return 0, err
	}
	if len(frames) == 0 {
		return math.Inf(-1), nil
	}
	lls := make([]float64, len(frames))
	c := sl.C
	parallel.RangeMin(len(frames), fastMinParallel, func(lo, hi int) {
		xf := make([]float32, m.stride)
		scores := make([]float64, c)
		for i := lo; i < hi; i++ {
			m.padFrame(frames[i], xf)
			idx := sl.Indices[i*c : (i+1)*c]
			maxv := math.Inf(-1)
			for j, comp := range idx {
				s := m.consts[comp] - 0.5*float64(m.quadForm(int(comp), xf))
				scores[j] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for _, s := range scores {
				if d := s - maxv; d >= -expCutoff {
					sum += expNeg(d)
				}
			}
			lls[i] = maxv + math.Log(sum)
		}
	})
	var sum float64
	for _, v := range lls {
		sum += v
	}
	return sum / float64(len(frames)), nil
}

// ScoreShortlist is the fast-path counterpart of Verifier.Score: the
// frame-averaged log-likelihood ratio of speaker over UBM, with the UBM
// scored once per frame and the speaker restricted to the per-frame
// top-c shortlist. Empty input scores -Inf, matching the exact path.
func ScoreShortlist(ubm, speaker *ScoringModel, frames [][]float64, c int) (float64, error) {
	if ubm.k != speaker.k {
		return 0, fmt.Errorf("gmm: UBM has %d components, speaker %d; shortlist scoring needs index-aligned models",
			ubm.k, speaker.k)
	}
	if len(frames) == 0 {
		return math.Inf(-1), nil
	}
	sl, err := ubm.TopC(frames, c)
	if err != nil {
		return 0, err
	}
	model, err := speaker.MeanLogLikelihoodShortlist(frames, sl)
	if err != nil {
		return 0, err
	}
	return model - sl.MeanLL(), nil
}
