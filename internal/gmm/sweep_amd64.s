// Sweep kernels for the fast scoring path: per-component Mahalanobis
// quadratic forms of one padded frame. quadSweepSSE is plain SSE
// (guaranteed on every amd64), four dimensions per instruction;
// quadSweepAVX2 is the eight-wide variant the Go dispatcher selects
// after its one-time CPUID/XGETBV probe.
//
// Summation order is fixed and mirrored exactly by quadSweepGeneric:
// even-numbered 4-dim blocks accumulate into one lane vector, odd blocks
// into another, the two are added lane-wise, and the lanes reduce as
// (l0+l2) + (l1+l3). A ymm accumulator preserves that order for free —
// its low half carries the even-block lanes and its high half the odd —
// and neither kernel uses FMA, whose fused rounding would diverge.
// TestQuadSweepMatchesGeneric pins bit equality.
//
// stride == 16 — every 13-dim MFCC model — takes a fully unrolled path:
// the frame stays in registers across the whole component loop and
// the blocks use independent accumulators (same summation order,
// no add-chain stalls).

#include "textflag.h"

// func quadSweepSSE(means, invVars, xf, out []float32, k, stride int)
TEXT ·quadSweepSSE(SB), NOSPLIT, $0-112
	MOVQ means_base+0(FP), SI
	MOVQ invVars_base+24(FP), DX
	MOVQ xf_base+48(FP), R8
	MOVQ out_base+72(FP), DI
	MOVQ k+96(FP), R10
	MOVQ stride+104(FP), R11
	TESTQ R10, R10
	JE done
	CMPQ R11, $16
	JE fast16

comp:
	XORPS X0, X0
	XORPS X1, X1
	MOVQ R8, BX  // frame cursor, reset per component row
	MOVQ R11, CX
	SHRQ $3, CX  // 8-dim double blocks
	JE rem

block8:
	MOVUPS (SI), X2
	MOVUPS (BX), X3
	SUBPS X2, X3
	MULPS X3, X3
	MOVUPS (DX), X4
	MULPS X4, X3
	ADDPS X3, X0
	MOVUPS 16(SI), X5
	MOVUPS 16(BX), X6
	SUBPS X5, X6
	MULPS X6, X6
	MOVUPS 16(DX), X7
	MULPS X7, X6
	ADDPS X6, X1
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, BX
	DECQ CX
	JNE block8

rem:
	// stride is a multiple of 4: at most one trailing 4-dim block.
	MOVQ R11, CX
	ANDQ $4, CX
	JE hsum
	MOVUPS (SI), X2
	MOVUPS (BX), X3
	SUBPS X2, X3
	MULPS X3, X3
	MOVUPS (DX), X4
	MULPS X4, X3
	ADDPS X3, X0
	ADDQ $16, SI
	ADDQ $16, DX

hsum:
	ADDPS X1, X0         // lane-wise: even-block + odd-block partials
	MOVAPS X0, X1
	MOVHLPS X0, X1       // lanes 0,1 of X1 = lanes 2,3 of X0
	ADDPS X1, X0         // lane0 = l0+l2, lane1 = l1+l3
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1 // broadcast lane1
	ADDSS X1, X0         // (l0+l2) + (l1+l3)
	MOVSS X0, (DI)
	ADDQ $4, DI
	DECQ R10
	JNE comp

done:
	RET

fast16:
	MOVUPS (R8), X12     // frame, resident for the whole sweep
	MOVUPS 16(R8), X13
	MOVUPS 32(R8), X14
	MOVUPS 48(R8), X15

comp16:
	MOVUPS (SI), X2      // block 0
	MOVAPS X12, X3
	SUBPS X2, X3
	MULPS X3, X3
	MOVUPS (DX), X4
	MULPS X4, X3
	MOVUPS 16(SI), X5    // block 1
	MOVAPS X13, X6
	SUBPS X5, X6
	MULPS X6, X6
	MOVUPS 16(DX), X7
	MULPS X7, X6
	MOVUPS 32(SI), X8    // block 2
	MOVAPS X14, X9
	SUBPS X8, X9
	MULPS X9, X9
	MOVUPS 32(DX), X10
	MULPS X10, X9
	MOVUPS 48(SI), X11   // block 3
	MOVAPS X15, X0
	SUBPS X11, X0
	MULPS X0, X0
	MOVUPS 48(DX), X1
	MULPS X1, X0
	ADDPS X9, X3         // even lanes: b0 + b2
	ADDPS X0, X6         // odd lanes:  b1 + b3
	ADDPS X6, X3         // lane-wise total
	MOVAPS X3, X1
	MOVHLPS X3, X1
	ADDPS X1, X3         // lane0 = l0+l2, lane1 = l1+l3
	MOVAPS X3, X1
	SHUFPS $0x55, X1, X1
	ADDSS X1, X3         // (l0+l2) + (l1+l3)
	MOVSS X3, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $4, DI
	DECQ R10
	JNE comp16
	RET

// func quadSweepAVX2(means, invVars, xf, out []float32, k, stride int)
// Caller guarantees stride % 8 == 0 (whole 8-dim double blocks only:
// a trailing 4-dim block would change the summation order).
TEXT ·quadSweepAVX2(SB), NOSPLIT, $0-112
	MOVQ means_base+0(FP), SI
	MOVQ invVars_base+24(FP), DX
	MOVQ xf_base+48(FP), R8
	MOVQ out_base+72(FP), DI
	MOVQ k+96(FP), R10
	MOVQ stride+104(FP), R11
	TESTQ R10, R10
	JE adone
	CMPQ R11, $16
	JE afast16

acomp:
	VXORPS Y0, Y0, Y0
	MOVQ R8, BX  // frame cursor, reset per component row
	MOVQ R11, CX
	SHRQ $3, CX  // 8-dim double blocks

ablock:
	VMOVUPS (SI), Y1
	VMOVUPS (BX), Y2
	VSUBPS Y1, Y2, Y2   // x − mean
	VMULPS Y2, Y2, Y2
	VMOVUPS (DX), Y3
	VMULPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0   // low lanes: even blocks, high: odd
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, BX
	DECQ CX
	JNE ablock

	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0    // lane-wise: even-block + odd-block partials
	VPERMILPS $0x4E, X0, X1
	VADDPS X1, X0, X0    // lane0 = l0+l2, lane1 = l1+l3
	VPERMILPS $0x55, X0, X1
	VADDSS X1, X0, X0    // (l0+l2) + (l1+l3)
	VMOVSS X0, (DI)
	ADDQ $4, DI
	DECQ R10
	JNE acomp
	VZEROUPPER

adone:
	RET

afast16:
	VMOVUPS (R8), Y14    // frame, resident for the whole sweep
	VMOVUPS 32(R8), Y15
	MOVQ R10, CX
	SHRQ $2, CX          // component quads: four independent reduce
	JE atail16           // chains per iteration hide the horizontal
	                     // add latency

aquad16:
	VMOVUPS (SI), Y1     // component i (4-dim blocks b0|b1, b2|b3)
	VSUBPS Y1, Y14, Y1
	VMULPS Y1, Y1, Y1
	VMULPS (DX), Y1, Y1
	VMOVUPS 32(SI), Y2
	VSUBPS Y2, Y15, Y2
	VMULPS Y2, Y2, Y2
	VMULPS 32(DX), Y2, Y2
	VADDPS Y2, Y1, Y1    // low: b0+b2 (even lanes), high: b1+b3 (odd)
	VMOVUPS 64(SI), Y3   // component i+1
	VSUBPS Y3, Y14, Y3
	VMULPS Y3, Y3, Y3
	VMULPS 64(DX), Y3, Y3
	VMOVUPS 96(SI), Y4
	VSUBPS Y4, Y15, Y4
	VMULPS Y4, Y4, Y4
	VMULPS 96(DX), Y4, Y4
	VADDPS Y4, Y3, Y3
	VMOVUPS 128(SI), Y5  // component i+2
	VSUBPS Y5, Y14, Y5
	VMULPS Y5, Y5, Y5
	VMULPS 128(DX), Y5, Y5
	VMOVUPS 160(SI), Y6
	VSUBPS Y6, Y15, Y6
	VMULPS Y6, Y6, Y6
	VMULPS 160(DX), Y6, Y6
	VADDPS Y6, Y5, Y5
	VMOVUPS 192(SI), Y7  // component i+3
	VSUBPS Y7, Y14, Y7
	VMULPS Y7, Y7, Y7
	VMULPS 192(DX), Y7, Y7
	VMOVUPS 224(SI), Y8
	VSUBPS Y8, Y15, Y8
	VMULPS Y8, Y8, Y8
	VMULPS 224(DX), Y8, Y8
	VADDPS Y8, Y7, Y7
	VEXTRACTF128 $1, Y1, X2
	VADDPS X2, X1, X1
	VEXTRACTF128 $1, Y3, X4
	VADDPS X4, X3, X3
	VEXTRACTF128 $1, Y5, X6
	VADDPS X6, X5, X5
	VEXTRACTF128 $1, Y7, X8
	VADDPS X8, X7, X7
	VPERMILPS $0x4E, X1, X2
	VADDPS X2, X1, X1
	VPERMILPS $0x4E, X3, X4
	VADDPS X4, X3, X3
	VPERMILPS $0x4E, X5, X6
	VADDPS X6, X5, X5
	VPERMILPS $0x4E, X7, X8
	VADDPS X8, X7, X7
	VPERMILPS $0x55, X1, X2
	VADDSS X2, X1, X1
	VPERMILPS $0x55, X3, X4
	VADDSS X4, X3, X3
	VPERMILPS $0x55, X5, X6
	VADDSS X6, X5, X5
	VPERMILPS $0x55, X7, X8
	VADDSS X8, X7, X7
	VMOVSS X1, (DI)
	VMOVSS X3, 4(DI)
	VMOVSS X5, 8(DI)
	VMOVSS X7, 12(DI)
	ADDQ $256, SI
	ADDQ $256, DX
	ADDQ $16, DI
	DECQ CX
	JNE aquad16

atail16:
	ANDQ $3, R10         // 1-3 leftover component rows
	JE adone16

atail16row:
	VMOVUPS (SI), Y1
	VSUBPS Y1, Y14, Y1
	VMULPS Y1, Y1, Y1
	VMULPS (DX), Y1, Y1
	VMOVUPS 32(SI), Y2
	VSUBPS Y2, Y15, Y2
	VMULPS Y2, Y2, Y2
	VMULPS 32(DX), Y2, Y2
	VADDPS Y2, Y1, Y1
	VEXTRACTF128 $1, Y1, X2
	VADDPS X2, X1, X1
	VPERMILPS $0x4E, X1, X2
	VADDPS X2, X1, X1
	VPERMILPS $0x55, X1, X2
	VADDSS X2, X1, X1
	VMOVSS X1, (DI)
	ADDQ $64, SI
	ADDQ $64, DX
	ADDQ $4, DI
	DECQ R10
	JNE atail16row

adone16:
	VZEROUPPER
	RET

// func topCSelectAVX2(scores []float32, vals []float64, idx []int32)
// c = len(vals) rounds of branchless max-extraction over the k =
// len(scores) score buffer: a vectorized max pass, an equality scan for
// the lowest lane holding the max (the tie rule), record into vals
// (widened) and idx, then knock the winner out with -Inf. The caller
// guarantees k % 8 == 0, k ≥ 8 and 1 ≤ c ≤ k. Mirrors topCExtract
// bit for bit.
TEXT ·topCSelectAVX2(SB), NOSPLIT, $0-72
	MOVQ scores_base+0(FP), SI
	MOVQ scores_len+8(FP), R10
	MOVQ vals_base+24(FP), DI
	MOVQ vals_len+32(FP), R11
	MOVQ idx_base+48(FP), R9
	TESTQ R11, R11
	JE sdone

sround:
	// Pass 1: lane-wise running max over all k scores.
	VMOVUPS (SI), Y0
	MOVQ SI, BX
	ADDQ $32, BX
	MOVQ R10, CX
	SHRQ $3, CX
	DECQ CX
	JE sredmax

smaxblk:
	VMOVUPS (BX), Y1
	VMAXPS Y1, Y0, Y0
	ADDQ $32, BX
	DECQ CX
	JNE smaxblk

sredmax:
	// Horizontal max into lane 0, then broadcast.
	VEXTRACTF128 $1, Y0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X0
	VBROADCASTSS X0, Y2

	// Pass 2: lowest index whose score equals the max.
	MOVQ SI, BX
	MOVQ R10, CX
	SHRQ $3, CX
	XORQ AX, AX

sfindblk:
	VMOVUPS (BX), Y1
	VCMPPS $0, Y2, Y1, Y3
	VMOVMSKPS Y3, DX
	TESTL DX, DX
	JNE sfound
	ADDQ $32, BX
	ADDQ $8, AX
	DECQ CX
	JNE sfindblk
	// Unreachable for non-NaN scores (the max came from the buffer);
	// degrade to index 0 rather than read past the slice.
	XORQ AX, AX
	JMP srecord

sfound:
	BSFL DX, DX
	ADDQ DX, AX

srecord:
	MOVL AX, (R9)
	ADDQ $4, R9
	VCVTSS2SD X0, X4, X4
	VMOVSD X4, (DI)
	ADDQ $8, DI
	MOVL $0xFF800000, R13  // float32 -Inf knocks the winner out
	MOVL R13, (SI)(AX*4)
	DECQ R11
	JNE sround
	VZEROUPPER

sdone:
	RET

// laneMasks32 holds eight one-hot ymm blend masks: row r has all bits
// set in 32-bit lane r. negInf32 is float32 -Inf for knockouts; half32
// scales quadratic forms during the fused conversion.
GLOBL laneMasks32<>(SB), RODATA, $256
DATA laneMasks32<>+0(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+36(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+72(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+108(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+144(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+180(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+216(SB)/4, $0xFFFFFFFF
DATA laneMasks32<>+252(SB)/4, $0xFFFFFFFF
GLOBL negInf32<>(SB), RODATA, $4
DATA negInf32<>+0(SB)/4, $0xFF800000
GLOBL half32<>(SB), RODATA, $4
DATA half32<>+0(SB)/4, $0x3F000000

// func topCScore32AVX2(q, consts []float32, vals []float64, idx []int32)
// The fused k = 32 score-and-select kernel: converts raw quadratic
// forms to per-component log-densities (consts - q/2, float32, the same
// exact values as the scalar loop in scoreSelect) and extracts the
// len(vals) best without the scores ever touching memory - they live in
// four ymm registers for the whole extraction. Per-block horizontal
// maxima (X8-X11) are maintained incrementally - only the block that
// loses a lane is re-reduced - and knockouts blend -Inf through a
// one-hot lane mask. Extraction order and the lowest-index tie rule
// match topCExtract bit for bit.
TEXT ·topCScore32AVX2(SB), NOSPLIT, $0-96
	MOVQ q_base+0(FP), SI
	MOVQ consts_base+24(FP), BX
	MOVQ vals_base+48(FP), DI
	MOVQ vals_len+56(FP), R11
	MOVQ idx_base+72(FP), R9
	TESTQ R11, R11
	JE t32done
	VBROADCASTSS half32<>(SB), Y1
	VMOVUPS (SI), Y4
	VMULPS Y1, Y4, Y4
	VMOVUPS (BX), Y0
	VSUBPS Y4, Y0, Y4
	VMOVUPS 32(SI), Y5
	VMULPS Y1, Y5, Y5
	VMOVUPS 32(BX), Y0
	VSUBPS Y5, Y0, Y5
	VMOVUPS 64(SI), Y6
	VMULPS Y1, Y6, Y6
	VMOVUPS 64(BX), Y0
	VSUBPS Y6, Y0, Y6
	VMOVUPS 96(SI), Y7
	VMULPS Y1, Y7, Y7
	VMOVUPS 96(BX), Y0
	VSUBPS Y7, Y0, Y7
	VBROADCASTSS negInf32<>(SB), Y13
	LEAQ laneMasks32<>(SB), R15

	// Initial horizontal max of each 8-lane block into X8..X11.
	VEXTRACTF128 $1, Y4, X0
	VMAXPS X0, X4, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X8
	VEXTRACTF128 $1, Y5, X0
	VMAXPS X0, X5, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X9
	VEXTRACTF128 $1, Y6, X0
	VMAXPS X0, X6, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X10
	VEXTRACTF128 $1, Y7, X0
	VMAXPS X0, X7, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X11

t32round:
	// Global max m (X0) and its block (AX); a strictly-greater update
	// keeps the lowest block on ties, which also holds the lowest
	// qualifying lane.
	VMOVAPS X8, X0
	XORQ AX, AX
	MOVQ $1, R13
	VUCOMISS X0, X9
	CMOVQHI R13, AX
	VMAXSS X9, X0, X0
	MOVQ $2, R13
	VUCOMISS X0, X10
	CMOVQHI R13, AX
	VMAXSS X10, X0, X0
	MOVQ $3, R13
	VUCOMISS X0, X11
	CMOVQHI R13, AX
	VMAXSS X11, X0, X0
	VBROADCASTSS X0, Y2

	// Locate the lowest matching lane of the winning block, blend -Inf
	// over it and re-reduce that block's horizontal max.
	CMPQ AX, $1
	JE t32b1
	JA t32b23
	VCMPPS $0, Y2, Y4, Y3
	VMOVMSKPS Y3, DX
	TESTL DX, DX
	JE t32safe
	BSFL DX, DX
	MOVQ DX, R13
	SHLQ $5, R13
	VMOVUPS (R15)(R13*1), Y3
	VBLENDVPS Y3, Y13, Y4, Y4
	VEXTRACTF128 $1, Y4, X0
	VMAXPS X0, X4, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X8
	JMP t32record

t32b1:
	VCMPPS $0, Y2, Y5, Y3
	VMOVMSKPS Y3, DX
	TESTL DX, DX
	JE t32safe
	BSFL DX, DX
	MOVQ DX, R13
	SHLQ $5, R13
	VMOVUPS (R15)(R13*1), Y3
	VBLENDVPS Y3, Y13, Y5, Y5
	VEXTRACTF128 $1, Y5, X0
	VMAXPS X0, X5, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X9
	JMP t32record

t32b23:
	CMPQ AX, $3
	JE t32b3
	VCMPPS $0, Y2, Y6, Y3
	VMOVMSKPS Y3, DX
	TESTL DX, DX
	JE t32safe
	BSFL DX, DX
	MOVQ DX, R13
	SHLQ $5, R13
	VMOVUPS (R15)(R13*1), Y3
	VBLENDVPS Y3, Y13, Y6, Y6
	VEXTRACTF128 $1, Y6, X0
	VMAXPS X0, X6, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X10
	JMP t32record

t32b3:
	VCMPPS $0, Y2, Y7, Y3
	VMOVMSKPS Y3, DX
	TESTL DX, DX
	JE t32safe
	BSFL DX, DX
	MOVQ DX, R13
	SHLQ $5, R13
	VMOVUPS (R15)(R13*1), Y3
	VBLENDVPS Y3, Y13, Y7, Y7
	VEXTRACTF128 $1, Y7, X0
	VMAXPS X0, X7, X0
	VPERMILPS $0x4E, X0, X1
	VMAXPS X1, X0, X0
	VPERMILPS $0x55, X0, X1
	VMAXSS X1, X0, X11
	JMP t32record

t32safe:
	// No lane compared equal (NaN scores): degrade to lane 0 of the
	// winning block without a knockout rather than misindex.
	XORL DX, DX

t32record:
	// Y2 lane 0 still holds m; AX:DX are block and lane.
	LEAQ (DX)(AX*8), AX
	MOVL AX, (R9)
	ADDQ $4, R9
	VCVTSS2SD X2, X3, X3
	VMOVSD X3, (DI)
	ADDQ $8, DI
	DECQ R11
	JNE t32round
	VZEROUPPER

t32done:
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
