package core

import (
	"voiceguard/internal/telemetry"
)

// Evidence metric names — the per-stage statistics the rolling windows
// and drift scores track. They match the span attribute names each
// VerifySpan already records, so dashboards and traces agree on naming.
const (
	// EvidenceDistanceCM is stage 1's estimated source distance, cm.
	EvidenceDistanceCM = "distance_cm"
	// EvidenceSVMMargin is stage 2's SVM decision margin.
	EvidenceSVMMargin = "svm_margin"
	// EvidenceFieldUT is stage 3's magnetic magnitude swing, µT.
	EvidenceFieldUT = "field_ut"
	// EvidenceBetaUTPerS is stage 3's maximum field change rate, µT/s.
	EvidenceBetaUTPerS = "beta_ut_per_s"
	// EvidenceLLR is stage 4's log-likelihood ratio, nat/frame.
	EvidenceLLR = "llr"
)

// EvidenceSeriesDefs returns the canonical evidence series the rolling
// windows capture, one per (stage, metric) pair, with fixed bin edges
// spanning both the genuine operating region and the attack regimes so
// a distribution shift between them moves mass across bins (what PSI/KS
// react to). Deterministic edges keep drift scores reproducible.
func EvidenceSeriesDefs() []telemetry.SeriesDef {
	return []telemetry.SeriesDef{
		{
			Stage:  StageDistance.MetricName(),
			Metric: EvidenceDistanceCM,
			// Genuine sweeps sit within Dt (≈6–7.5 cm); loudspeaker replays
			// estimate tens of cm to meters.
			Edges: []float64{2, 4, 6, 8, 10, 15, 25, 50, 100, 200},
		},
		{
			Stage:  StageSoundField.MetricName(),
			Metric: EvidenceSVMMargin,
			// Mouth-like sweeps score positive margins, machines negative.
			Edges: []float64{-2, -1, -0.5, -0.2, 0, 0.2, 0.5, 1, 2, 4},
		},
		{
			Stage:  StageLoudspeaker.MetricName(),
			Metric: EvidenceFieldUT,
			// Ambient swing is a few µT; a nearby speaker magnet swings
			// tens of µT (Mt = 10 µT at the paper's operating point).
			Edges: []float64{0.5, 1, 2, 4, 8, 12, 20, 40, 80},
		},
		{
			Stage:  StageLoudspeaker.MetricName(),
			Metric: EvidenceBetaUTPerS,
			// βt = 150 µT/s at the paper's operating point.
			Edges: []float64{5, 10, 25, 50, 100, 150, 250, 500},
		},
		{
			Stage:  StageSpeakerID.MetricName(),
			Metric: EvidenceLLR,
			// Genuine per-frame LLRs land above the calibrated threshold,
			// imitators below; both within a few nats of zero.
			Edges: []float64{-3, -2, -1.5, -1, -0.5, -0.25, 0, 0.25, 0.5, 1, 1.5, 2, 3},
		},
	}
}

// evidenceKey addresses one registered series without allocating.
type evidenceKey struct{ stage, metric string }

// EvidenceObserver feeds decision evidence into a WindowSet. Binding the
// (stage, metric) → series resolution once at construction keeps the
// per-decision path to map lookups and atomic adds — no allocations.
type EvidenceObserver struct {
	windows *telemetry.WindowSet
	ids     map[evidenceKey]telemetry.SeriesID
}

// NewEvidenceObserver binds a window set whose series were registered
// from EvidenceSeriesDefs (or any subset sharing its naming).
func NewEvidenceObserver(w *telemetry.WindowSet) *EvidenceObserver {
	o := &EvidenceObserver{windows: w, ids: make(map[evidenceKey]telemetry.SeriesID)}
	for i, d := range w.Defs() {
		o.ids[evidenceKey{stage: d.Stage, metric: d.Metric}] = telemetry.SeriesID(i)
	}
	return o
}

// Windows returns the bound window set.
func (o *EvidenceObserver) Windows() *telemetry.WindowSet {
	if o == nil {
		return nil
	}
	return o.windows
}

// ObserveDecision records every evidence value carried by the decision's
// executed stages into the rolling windows. Nil-receiver safe; stages
// that recorded no evidence (validation failures, abandoned stages)
// contribute nothing.
func (o *EvidenceObserver) ObserveDecision(d *Decision) {
	if o == nil || d == nil {
		return
	}
	for si := range d.Stages {
		res := &d.Stages[si]
		stage := res.Stage.MetricName()
		for ei := range res.Evidence {
			ev := &res.Evidence[ei]
			if ev.Metric == "" {
				continue
			}
			if id, ok := o.ids[evidenceKey{stage: stage, metric: ev.Metric}]; ok {
				o.windows.ObserveEvidence(id, ev.Value)
			}
		}
	}
}
