//go:build linux

package core

import (
	"syscall"
	"time"
)

// rusageThread selects per-thread accounting for getrusage(2). Defined
// locally (same value as RUSAGE_THREAD) so the build does not depend on
// the constant being exported by the syscall package.
const rusageThread = 1

// threadCPUTime returns the calling OS thread's consumed CPU time
// (user + system). Meaningful for stage attribution only while the
// goroutine is pinned with runtime.LockOSThread.
func threadCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(rusageThread, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
