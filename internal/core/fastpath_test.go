package core

import (
	"math"
	"sync"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/gmm"
	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// fastFixture is a trained, enrolled GMM-UBM verifier with one genuine
// and one impostor probe — the scenario every fast-path test scores.
// Training runs EM once; tests share the instance and must leave the
// exact path restored (t.Cleanup(v.DisableFastPath)).
type fastFixture struct {
	v        *SpeakerVerifier
	genuine  *audio.Signal
	impostor *audio.Signal
}

var (
	fastOnce sync.Once
	fastFix  *fastFixture
	fastErr  error
)

func loadFastFixture(t *testing.T) *fastFixture {
	t.Helper()
	fastOnce.Do(func() {
		fastFix, fastErr = buildFastFixture(t)
	})
	if fastErr != nil {
		t.Fatal(fastErr)
	}
	t.Cleanup(fastFix.v.DisableFastPath)
	return fastFix
}

func buildFastFixture(t *testing.T) (*fastFixture, error) {
	bg := buildBackground(t, 4, 900)
	// The default 32-component UBM: the ε contract is stated for the
	// production model shape, and truncation error grows as the mixture
	// shrinks (C=4 of 16 drops far more mass than C=4 of 32).
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Seed: 900})
	if err != nil {
		return nil, err
	}
	rng := newTestRand(901)
	victim := speech.RandomProfile("victim", rng)
	other := speech.RandomProfile("other", rng)
	enroll := renderUtterances(t, victim, "424242", 3, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll}); err != nil {
		return nil, err
	}
	return &fastFixture{
		v:        v,
		genuine:  renderUtterances(t, victim, "424242", 1, rng)[0],
		impostor: renderUtterances(t, other, "424242", 1, rng)[0],
	}, nil
}

func TestFastPathScoresWithinEpsilon(t *testing.T) {
	f := loadFastFixture(t)
	v := f.v
	exactG, err := v.Score("victim", f.genuine)
	if err != nil {
		t.Fatal(err)
	}
	exactI, err := v.Score("victim", f.impostor)
	if err != nil {
		t.Fatal(err)
	}
	// The verdict-equality claim below needs the threshold margin to
	// exceed the fast path's error bound; a collapse of this gap is a
	// model-quality regression worth failing on in its own right.
	if gap := exactG - exactI; gap <= 2*gmm.ShortlistEpsilon {
		t.Fatalf("genuine/impostor gap %v too small to separate at ε=%v", gap, gmm.ShortlistEpsilon)
	}

	if err := v.EnableFastPath(FastPathConfig{}); err != nil {
		t.Fatal(err)
	}
	topC, on := v.FastPath()
	if !on || topC != gmm.DefaultShortlistC {
		t.Fatalf("FastPath() = (%d, %v), want (%d, true)", topC, on, gmm.DefaultShortlistC)
	}
	if sm := v.CompiledUBM(); sm == nil || sm.Digest() == "" {
		t.Fatal("fast path enabled without a compiled UBM")
	}
	fastG, err := v.Score("victim", f.genuine)
	if err != nil {
		t.Fatal(err)
	}
	fastI, err := v.Score("victim", f.impostor)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(fastG - exactG); d > gmm.ShortlistEpsilon {
		t.Errorf("genuine |ΔLLR| = %v exceeds ε = %v", d, gmm.ShortlistEpsilon)
	}
	if d := math.Abs(fastI - exactI); d > gmm.ShortlistEpsilon {
		t.Errorf("impostor |ΔLLR| = %v exceeds ε = %v", d, gmm.ShortlistEpsilon)
	}
	// Verdicts agree with the exact path at the midpoint threshold.
	v.Threshold = (exactG + exactI) / 2
	if !v.Verify("victim", f.genuine).Pass {
		t.Error("fast path rejected the genuine probe")
	}
	if v.Verify("victim", f.impostor).Pass {
		t.Error("fast path accepted the impostor probe")
	}

	v.DisableFastPath()
	if _, on := v.FastPath(); on {
		t.Error("DisableFastPath left the fast path on")
	}
	again, err := v.Score("victim", f.genuine)
	if err != nil {
		t.Fatal(err)
	}
	if again != exactG {
		t.Errorf("exact path not bit-identical after disable: %v vs %v", again, exactG)
	}
}

func TestEnableFastPathValidation(t *testing.T) {
	f := loadFastFixture(t)
	if err := f.v.EnableFastPath(FastPathConfig{TopC: -1}); err == nil {
		t.Error("negative shortlist width accepted")
	}
	if _, on := f.v.FastPath(); on {
		t.Error("failed enable left the fast path on")
	}

	bg := buildBackground(t, 5, 910)
	isv, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{
		Backend: BackendISV, Components: 16, ISVRank: 4, Seed: 910,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := isv.EnableFastPath(FastPathConfig{}); err == nil {
		t.Error("ISV backend accepted the fast path")
	}
}

func TestModelDigestsFastEntry(t *testing.T) {
	f := loadFastFixture(t)
	v := f.v
	exact, err := v.ModelDigests()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := exact["asv/fast"]; ok {
		t.Fatal("exact path published an asv/fast digest")
	}
	if err := v.EnableFastPath(FastPathConfig{TopC: 4}); err != nil {
		t.Fatal(err)
	}
	at4, err := v.ModelDigests()
	if err != nil {
		t.Fatal(err)
	}
	if at4["asv/fast"] == "" {
		t.Fatal("fast path published no asv/fast digest")
	}
	// The provenance digest pins the shortlist width.
	if err := v.EnableFastPath(FastPathConfig{TopC: 8}); err != nil {
		t.Fatal(err)
	}
	at8, err := v.ModelDigests()
	if err != nil {
		t.Fatal(err)
	}
	if at8["asv/fast"] == at4["asv/fast"] {
		t.Error("asv/fast digest did not change with the shortlist width")
	}
	// The model digests themselves are path-independent.
	for _, key := range []string{"asv/config", "asv/ubm", "asv/user/victim"} {
		if exact[key] == "" || exact[key] != at4[key] {
			t.Errorf("%s digest changed with the scoring path: %q vs %q", key, exact[key], at4[key])
		}
	}
}

// countingShortlister routes the fast path's UBM pass through TopC while
// counting calls — the shape of the server's cross-request batcher.
type countingShortlister struct {
	sm    *gmm.ScoringModel
	topC  int
	calls int
}

func (c *countingShortlister) ScoreUBM(frames [][]float64) (*gmm.Shortlist, error) {
	c.calls++
	return c.sm.TopC(frames, c.topC)
}

func TestSetUBMShortlisterSeam(t *testing.T) {
	f := loadFastFixture(t)
	v := f.v
	if err := v.SetUBMShortlister(&countingShortlister{}); err == nil {
		t.Fatal("shortlister attached before the fast path was enabled")
	}
	if err := v.EnableFastPath(FastPathConfig{}); err != nil {
		t.Fatal(err)
	}
	direct, err := v.Score("victim", f.genuine)
	if err != nil {
		t.Fatal(err)
	}
	topC, _ := v.FastPath()
	cs := &countingShortlister{sm: v.CompiledUBM(), topC: topC}
	if err := v.SetUBMShortlister(cs); err != nil {
		t.Fatal(err)
	}
	routed, err := v.Score("victim", f.genuine)
	if err != nil {
		t.Fatal(err)
	}
	if cs.calls != 1 {
		t.Errorf("shortlister served %d calls, want 1", cs.calls)
	}
	if routed != direct {
		t.Errorf("routed score %v differs from direct fast score %v", routed, direct)
	}
	if err := v.SetUBMShortlister(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Score("victim", f.genuine); err != nil {
		t.Fatal(err)
	}
	if cs.calls != 1 {
		t.Errorf("detached shortlister still served calls (%d)", cs.calls)
	}
}

func TestFastPathModelCacheAndReenroll(t *testing.T) {
	f := loadFastFixture(t)
	v := f.v
	rng := newTestRand(920)
	user := speech.RandomProfile("cacheuser", rng)
	if err := v.Enroll("cacheuser", [][]*audio.Signal{renderUtterances(t, user, "171717", 2, rng)}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	metrics := gmm.CacheMetrics{
		Hits:   reg.Counter("fastpath_cache_events", telemetry.Labels{"event": "hit"}),
		Misses: reg.Counter("fastpath_cache_events", telemetry.Labels{"event": "miss"}),
	}
	cache := gmm.NewModelCache(4, metrics)
	if err := v.EnableFastPath(FastPathConfig{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	probe := renderUtterances(t, user, "171717", 1, rng)[0]
	for i := 0; i < 2; i++ {
		if _, err := v.Score("cacheuser", probe); err != nil {
			t.Fatal(err)
		}
	}
	if m, h := metrics.Misses.Value(), metrics.Hits.Value(); m != 1 || h != 1 {
		t.Errorf("after two scores: misses=%d hits=%d, want 1/1", m, h)
	}
	// Re-enrollment produces a new model: the digest memo must drop so
	// the next score compiles the fresh model, not the cached stale one.
	if err := v.Enroll("cacheuser", [][]*audio.Signal{renderUtterances(t, user, "989898", 2, rng)}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Score("cacheuser", probe); err != nil {
		t.Fatal(err)
	}
	if m := metrics.Misses.Value(); m != 2 {
		t.Errorf("re-enrolled model was not recompiled (misses=%d, want 2)", m)
	}
}
