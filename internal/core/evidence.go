package core

// Evidence-pack bridging: stable content digests for the models the
// cascade consults and the session bytes it consumes, plus the projection
// of a Decision into the pack's portable record form. Model digests hash
// the exact persisted form (core/persist JSON, whose map keys Go encodes
// sorted), so the same trained state always digests identically and a
// replayer can prove it rebuilt the models the original verdict used.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"voiceguard/internal/audio"
	"voiceguard/internal/evidence"
	"voiceguard/internal/gmm"
	"voiceguard/internal/sensors"
)

// ModelDigests returns the content digests of the speaker-verification
// models: "asv/config" (backend, MFCC front-end, relevance, threshold),
// "asv/ubm", "asv/isv" (when trained) and one "asv/user/<name>" per
// enrolled identity.
func (v *SpeakerVerifier) ModelDigests() (map[string]string, error) {
	out := map[string]string{}
	cfg, err := json.Marshal(struct {
		Backend   Backend `json:"backend"`
		MFCC      any     `json:"mfcc"`
		Relevance float64 `json:"relevance"`
		Threshold float64 `json:"threshold"`
	}{v.backend, v.mfcc, v.relevance, v.Threshold})
	if err != nil {
		return nil, fmt.Errorf("core: digesting ASV config: %w", err)
	}
	out["asv/config"] = evidence.Digest(cfg)
	if f := v.fast; f != nil {
		// The compiled form's provenance: shortlist width, layout version
		// and the source-UBM digest pin exactly which fast path served.
		// Absent when the exact path serves, so replay of exact-path packs
		// stays bit-exact against a plainly rebuilt system.
		doc, err := json.Marshal(struct {
			TopC   int    `json:"top_c"`
			Layout string `json:"layout"`
			UBM    string `json:"ubm"`
		}{f.topC, gmm.ScoringLayout, f.ubm.Digest()})
		if err != nil {
			return nil, fmt.Errorf("core: digesting fast-path config: %w", err)
		}
		out["asv/fast"] = evidence.Digest(doc)
	}

	var buf bytes.Buffer
	if err := v.ubm.Save(&buf); err != nil {
		return nil, fmt.Errorf("core: digesting UBM: %w", err)
	}
	out["asv/ubm"] = evidence.Digest(buf.Bytes())
	if v.isv != nil {
		buf.Reset()
		if err := v.isv.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: digesting ISV: %w", err)
		}
		out["asv/isv"] = evidence.Digest(buf.Bytes())
	}
	for name, ver := range v.users {
		buf.Reset()
		if err := ver.Speaker.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: digesting speaker model %q: %w", name, err)
		}
		out["asv/user/"+name] = evidence.Digest(buf.Bytes())
	}
	for name, spk := range v.isvUsers {
		ref, err := json.Marshal(spk.Ref())
		if err != nil {
			return nil, fmt.Errorf("core: digesting ISV user %q: %w", name, err)
		}
		out["asv/user/"+name] = evidence.Digest(ref)
	}
	return out, nil
}

// ModelDigests returns one "soundfield/band/<deg>" content digest per
// trained angular-width band.
func (v *SoundFieldVerifier) ModelDigests() (map[string]string, error) {
	out := map[string]string{}
	var buf bytes.Buffer
	for k, m := range v.models {
		buf.Reset()
		if err := m.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: digesting sound-field band %d: %w", k, err)
		}
		out[fmt.Sprintf("soundfield/band/%d", k)] = evidence.Digest(buf.Bytes())
	}
	return out, nil
}

// ModelDigests returns the content digests of every model and threshold
// configuration the assembled cascade consults — the models.json payload
// of an evidence pack. Stages that are not configured contribute nothing.
func (s *System) ModelDigests() (map[string]string, error) {
	out := map[string]string{}
	if s.Distance != nil {
		cfg, err := json.Marshal(s.Distance)
		if err != nil {
			return nil, fmt.Errorf("core: digesting distance config: %w", err)
		}
		out["distance/config"] = evidence.Digest(cfg)
	}
	if s.Field != nil {
		m, err := s.Field.ModelDigests()
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			out[k] = v
		}
	}
	if s.Speaker != nil {
		cfg, err := json.Marshal(s.Speaker)
		if err != nil {
			return nil, fmt.Errorf("core: digesting loudspeaker config: %w", err)
		}
		out["loudspeaker/config"] = evidence.Digest(cfg)
	}
	if s.Identity != nil {
		m, err := s.Identity.ModelDigests()
		if err != nil {
			return nil, err
		}
		for k, v := range m {
			out[k] = v
		}
	}
	return out, nil
}

// SessionDigest computes the canonical content digest of a session — the
// exact inputs the cascade consumed, encoded as a fixed binary layout
// (strings length-prefixed, floats as IEEE-754 bits little-endian) so the
// digest is independent of any JSON encoder's formatting choices.
func SessionDigest(s *SessionData) string {
	d := evidence.NewDigester()
	writeString(d, s.ClaimedUser)
	if g := s.Gesture; g != nil {
		writeTrace(d, g.Gyro)
		writeTrace(d, g.Accel)
		writeTrace(d, g.Mag)
		writeFloat(d, g.SweepStart)
		writeFloat(d, g.SweepEnd)
		writeSignal(d, g.Capture)
	}
	writeUint(d, uint64(len(s.Field)))
	for _, m := range s.Field {
		writeFloat(d, m.AngleDeg)
		writeFloat(d, m.FreqHz)
		writeFloat(d, m.LevelDB)
	}
	writeSignal(d, s.Voice)
	return d.Sum()
}

// AudioDigest computes the whole-signal and per-frame content digests of
// one audio channel over frameLen-sample windows — the redaction
// stand-in an evidence pack carries in place of raw audio.
func AudioDigest(channel string, sig *audio.Signal, frameLen int) evidence.AudioDigest {
	ad := evidence.AudioDigest{Channel: channel}
	if sig == nil {
		return ad
	}
	ad.Samples = len(sig.Samples)
	whole := evidence.NewDigester()
	writeFloat(whole, sig.Rate)
	var scratch [8]byte
	for _, v := range sig.Samples {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		whole.Write(scratch[:])
	}
	ad.Digest = whole.Sum()
	if frameLen <= 0 {
		return ad
	}
	ad.FrameLen = frameLen
	for off := 0; off < len(sig.Samples); off += frameLen {
		end := off + frameLen
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		fd := evidence.NewDigester()
		for _, v := range sig.Samples[off:end] {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			fd.Write(scratch[:])
		}
		ad.FrameDigests = append(ad.FrameDigests, fd.Sum())
	}
	return ad
}

// DecisionEvidence projects a decision into its portable evidence-pack
// record: stage names become metric names and every score carries its
// IEEE-754 bit pattern so replay comparison is bit-exact.
func DecisionEvidence(d Decision) evidence.DecisionRecord {
	rec := evidence.DecisionRecord{
		TraceID:   d.TraceID,
		Accepted:  d.Accepted,
		ElapsedUS: d.Elapsed.Microseconds(),
	}
	if !d.Accepted && d.FailedStage != 0 {
		rec.FailedStage = d.FailedStage.MetricName()
	}
	for _, st := range d.Stages {
		rec.Stages = append(rec.Stages, evidence.StageOutcome{
			Stage:     st.Stage.MetricName(),
			Pass:      st.Pass,
			Score:     st.Score,
			ScoreBits: evidence.FloatBits(st.Score),
			Detail:    st.Detail,
			ElapsedUS: st.Elapsed.Microseconds(),
		})
	}
	return rec
}

// writeString appends a length-prefixed string to the digest stream.
func writeString(d *evidence.Digester, s string) {
	writeUint(d, uint64(len(s)))
	d.Write([]byte(s))
}

// writeUint appends a little-endian uint64 to the digest stream.
func writeUint(d *evidence.Digester, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.Write(b[:])
}

// writeFloat appends a float64's IEEE-754 bits to the digest stream.
func writeFloat(d *evidence.Digester, v float64) {
	writeUint(d, math.Float64bits(v))
}

// writeTrace appends a sensor trace (name, then each sample's time and
// vector) to the digest stream.
func writeTrace(d *evidence.Digester, tr *sensors.Trace) {
	if tr == nil {
		writeUint(d, 0)
		return
	}
	writeString(d, tr.Name)
	writeUint(d, uint64(len(tr.Samples)))
	for _, smp := range tr.Samples {
		writeFloat(d, smp.T)
		writeFloat(d, smp.V.X)
		writeFloat(d, smp.V.Y)
		writeFloat(d, smp.V.Z)
	}
}

// writeSignal appends an audio signal (rate, then raw sample bits) to the
// digest stream.
func writeSignal(d *evidence.Digester, sig *audio.Signal) {
	if sig == nil {
		writeUint(d, 0)
		return
	}
	writeFloat(d, sig.Rate)
	writeUint(d, uint64(len(sig.Samples)))
	var b [8]byte
	for _, v := range sig.Samples {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		d.Write(b[:])
	}
}
