package core

import (
	"runtime"
	"sync/atomic"
	"time"
)

// resourceAttribution gates per-stage CPU-time measurement in TimeStage.
// Off by default: the measurement pins the goroutine to its OS thread
// for the stage's duration and reads per-thread rusage, which is cheap
// but not free, so the default serving and benchmark profiles are
// bit-identical to a build without this file.
var resourceAttribution atomic.Bool

// SetResourceAttribution toggles per-stage CPU-time capture. When on,
// TimeStage pins the calling goroutine to its OS thread and stamps
// StageResult.CPU with the thread CPU time consumed by the stage;
// when off StageResult.CPU stays zero.
func SetResourceAttribution(on bool) { resourceAttribution.Store(on) }

// ResourceAttributionEnabled reports the current toggle state.
func ResourceAttributionEnabled() bool { return resourceAttribution.Load() }

// timeStageResources is TimeStage's attribution variant: same Elapsed
// contract, plus thread-CPU delta into res.CPU. Pinning the goroutine
// makes the per-thread counter deltas attributable to this stage alone
// (modulo preemption by the scheduler onto the same thread, which the
// pin prevents for Go code).
func timeStageResources(res *StageResult) func() {
	runtime.LockOSThread()
	start := time.Now()
	cpuStart := threadCPUTime()
	return func() {
		res.Elapsed = time.Since(start)
		res.CPU = threadCPUTime() - cpuStart
		runtime.UnlockOSThread()
	}
}
