package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"voiceguard/internal/audio"
	"voiceguard/internal/features"
	"voiceguard/internal/gmm"
	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// Backend selects the ASV scoring model, mirroring the paper's choice of
// the Spear toolbox's GMM and ISV toolchains (Table I).
type Backend int

// Supported ASV back-ends.
const (
	BackendGMMUBM Backend = iota + 1
	BackendISV
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendGMMUBM:
		return "gmm-ubm"
	case BackendISV:
		return "isv"
	default:
		return "unknown"
	}
}

// SpeakerVerifier implements stage 4 (§IV-C): classical text-dependent
// speaker verification over MFCC features.
type SpeakerVerifier struct {
	backend   Backend
	mfcc      features.MFCCConfig
	ubm       *gmm.GMM
	isv       *gmm.ISV
	relevance float64
	// Threshold is the accept threshold on the back-end score (a
	// log-likelihood ratio for both back-ends). Set it directly or via
	// CalibrateThreshold.
	Threshold float64 // unit: score

	users    map[string]*gmm.Verifier
	isvUsers map[string]*gmm.ISVSpeaker
}

// SpeakerVerifierConfig configures training.
type SpeakerVerifierConfig struct {
	// Backend selects GMM-UBM or ISV (default GMM-UBM).
	Backend Backend
	// Components is the UBM size (default 32).
	Components int
	// Relevance is the MAP relevance factor (default 4, Spear's choice
	// for small enrollment sets).
	Relevance float64 // unit: dimensionless
	// ISVRank is the session-subspace rank for the ISV back-end
	// (default 10).
	ISVRank int
	// MFCC overrides the feature front-end; the zero value selects
	// features.DefaultMFCCConfig with CMVN disabled. Text-dependent
	// verification of one short passphrase keeps the speaker's static
	// spectral identity in the cepstral mean, which per-utterance CMVN
	// would erase; session variability is instead handled by the model
	// (MAP prior, ISV subspace).
	MFCC *features.MFCCConfig
	// Seed seeds UBM training.
	Seed int64
}

func (c *SpeakerVerifierConfig) setDefaults() {
	if c.Backend == 0 {
		c.Backend = BackendGMMUBM
	}
	if c.Components == 0 {
		c.Components = 32
	}
	if stats.IsZero(c.Relevance) {
		c.Relevance = 4
	}
	if c.ISVRank == 0 {
		c.ISVRank = 10
	}
	if c.MFCC == nil {
		mfcc := features.DefaultMFCCConfig()
		mfcc.CMVN = false
		c.MFCC = &mfcc
	}
}

// ErrUnknownUser is returned when verifying an identity that was never
// enrolled.
var ErrUnknownUser = errors.New("core: unknown user")

// extract runs the MFCC front-end over an utterance.
func (v *SpeakerVerifier) extract(s *audio.Signal) ([][]float64, error) {
	return features.Extract(s, v.mfcc)
}

// TrainSpeakerVerifier builds the back-end from background (non-user)
// speech. background maps speaker → sessions → utterances; it trains the
// UBM and, for the ISV back-end, the session subspace.
func TrainSpeakerVerifier(background map[string][][]*audio.Signal, cfg SpeakerVerifierConfig) (*SpeakerVerifier, error) {
	cfg.setDefaults()
	v := &SpeakerVerifier{
		backend:   cfg.Backend,
		mfcc:      *cfg.MFCC,
		relevance: cfg.Relevance,
		users:     make(map[string]*gmm.Verifier),
		isvUsers:  make(map[string]*gmm.ISVSpeaker),
	}
	// Iterate speakers in sorted order: map order would otherwise make
	// the pooled frame order — and therefore the k-means initialization
	// and the trained UBM — nondeterministic across runs.
	names := make([]string, 0, len(background))
	for spk := range background {
		names = append(names, spk)
	}
	sort.Strings(names)
	var pooled [][]float64
	sessions := make(map[string][][][]float64)
	for _, spk := range names {
		for _, sess := range background[spk] {
			var sessFrames [][]float64
			for _, utt := range sess {
				f, err := v.extract(utt)
				if err != nil {
					return nil, fmt.Errorf("core: extracting background features for %s: %w", spk, err)
				}
				pooled = append(pooled, f...)
				sessFrames = append(sessFrames, f...)
			}
			if len(sessFrames) > 0 {
				sessions[spk] = append(sessions[spk], sessFrames)
			}
		}
	}
	if len(pooled) == 0 {
		return nil, errors.New("core: no background speech for ASV training")
	}
	ubm, err := gmm.TrainUBM(pooled, gmm.TrainConfig{Components: cfg.Components, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: training UBM: %w", err)
	}
	v.ubm = ubm
	if cfg.Backend == BackendISV {
		isv, err := gmm.TrainISV(ubm, sessions, gmm.ISVConfig{Rank: cfg.ISVRank, Relevance: cfg.Relevance})
		if err != nil {
			return nil, fmt.Errorf("core: training ISV: %w", err)
		}
		v.isv = isv
	}
	return v, nil
}

// Enroll registers a user from enrollment utterances (grouped by session
// for the ISV back-end; a flat list may be passed as one session).
func (v *SpeakerVerifier) Enroll(user string, sessions [][]*audio.Signal) error {
	if user == "" {
		return errors.New("core: empty user name")
	}
	if len(sessions) == 0 {
		return fmt.Errorf("core: no enrollment sessions for %q", user)
	}
	var all [][]float64
	var perSession [][][]float64
	for _, sess := range sessions {
		var sessFrames [][]float64
		for _, utt := range sess {
			f, err := v.extract(utt)
			if err != nil {
				return fmt.Errorf("core: extracting enrollment features for %q: %w", user, err)
			}
			all = append(all, f...)
			sessFrames = append(sessFrames, f...)
		}
		if len(sessFrames) > 0 {
			perSession = append(perSession, sessFrames)
		}
	}
	switch v.backend {
	case BackendISV:
		spk, err := v.isv.Enroll(perSession)
		if err != nil {
			return fmt.Errorf("core: ISV enrollment for %q: %w", user, err)
		}
		v.isvUsers[user] = spk
	default:
		ver, err := gmm.NewVerifier(v.ubm, all, v.relevance)
		if err != nil {
			return fmt.Errorf("core: GMM enrollment for %q: %w", user, err)
		}
		v.users[user] = ver
	}
	return nil
}

// Score returns the back-end score of an utterance against a user.
func (v *SpeakerVerifier) Score(user string, utt *audio.Signal) (float64, error) {
	return v.ScoreSpan(nil, user, utt)
}

// ScoreSpan is Score recording the two expensive sub-operations under
// span (nil disables tracing at zero cost): an "mfcc-extract" child
// around the feature front-end and a "gmm-score" child around back-end
// scoring, each carrying its own shape and fan-out children. The caller
// owns span's End.
func (v *SpeakerVerifier) ScoreSpan(span *telemetry.Span, user string, utt *audio.Signal) (float64, error) {
	ex := span.StartSpan("mfcc-extract")
	frames, err := features.ExtractSpan(ex, utt, v.mfcc)
	ex.End()
	if err != nil {
		return 0, fmt.Errorf("core: extracting test features: %w", err)
	}
	sc := span.StartSpan("gmm-score")
	defer sc.End()
	switch v.backend {
	case BackendISV:
		spk, ok := v.isvUsers[user]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownUser, user)
		}
		return spk.ScoreSpan(sc, frames)
	default:
		ver, ok := v.users[user]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownUser, user)
		}
		return ver.ScoreSpan(sc, frames), nil
	}
}

// Verify runs the identity check as a pipeline stage.
func (v *SpeakerVerifier) Verify(user string, utt *audio.Signal) (res StageResult) {
	return v.VerifySpan(nil, user, utt)
}

// VerifySpan is Verify attaching its decision evidence to span (nil
// disables tracing at zero cost): the log-likelihood-ratio score, the
// live accept threshold, and the back-end name, plus the ScoreSpan
// sub-operation children. The caller owns span's End.
func (v *SpeakerVerifier) VerifySpan(span *telemetry.Span, user string, utt *audio.Signal) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageSpeakerID
	span.SetString("backend", v.backend.String())
	span.SetFloat("threshold_llr", v.Threshold, "nat/frame")
	score, err := v.ScoreSpan(span, user, utt)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	span.SetFloat("llr", score, "nat/frame")
	res.Score = score - v.Threshold
	if score >= v.Threshold {
		res.Pass = true
		res.Detail = fmt.Sprintf("speaker accepted (score %.3f ≥ %.3f)", score, v.Threshold)
	} else {
		res.Detail = fmt.Sprintf("speaker rejected (score %.3f < %.3f)", score, v.Threshold)
	}
	return res
}

// Backend returns the configured back-end.
func (v *SpeakerVerifier) Backend() Backend { return v.backend }

// CalibrateThreshold sets the accept threshold from held-out genuine
// utterances of an enrolled user: the minimum genuine score minus the
// safety margin, i.e. the paper's zero-FRR operating point. Margin > 0
// trades FAR headroom for robustness to genuine-score variation.
// unit: margin score
func (v *SpeakerVerifier) CalibrateThreshold(user string, genuine []*audio.Signal, margin float64) error {
	if len(genuine) == 0 {
		return fmt.Errorf("core: calibration needs genuine utterances for %q", user)
	}
	minScore := math.Inf(1)
	for i, utt := range genuine {
		s, err := v.Score(user, utt)
		if err != nil {
			return fmt.Errorf("core: calibration utterance %d: %w", i, err)
		}
		if s < minScore {
			minScore = s
		}
	}
	v.Threshold = minScore - margin
	return nil
}
