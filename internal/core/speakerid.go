package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"voiceguard/internal/audio"
	"voiceguard/internal/features"
	"voiceguard/internal/gmm"
	"voiceguard/internal/stats"
	"voiceguard/internal/telemetry"
)

// Backend selects the ASV scoring model, mirroring the paper's choice of
// the Spear toolbox's GMM and ISV toolchains (Table I).
type Backend int

// Supported ASV back-ends.
const (
	BackendGMMUBM Backend = iota + 1
	BackendISV
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendGMMUBM:
		return "gmm-ubm"
	case BackendISV:
		return "isv"
	default:
		return "unknown"
	}
}

// SpeakerVerifier implements stage 4 (§IV-C): classical text-dependent
// speaker verification over MFCC features.
type SpeakerVerifier struct {
	backend   Backend
	mfcc      features.MFCCConfig
	ubm       *gmm.GMM
	isv       *gmm.ISV
	relevance float64
	// Threshold is the accept threshold on the back-end score (a
	// log-likelihood ratio for both back-ends). Set it directly or via
	// CalibrateThreshold.
	Threshold float64 // unit: score

	users    map[string]*gmm.Verifier
	isvUsers map[string]*gmm.ISVSpeaker

	// fast is the compiled top-C scoring state; nil selects the exact
	// path (the default).
	fast *fastASV
}

// UBMShortlister is the seam the serving layer's cross-request batcher
// plugs into: it produces the per-frame UBM top-C shortlist the fast
// scoring path consumes. The result must be bit-identical to a direct
// gmm.ScoringModel.TopC call over the same frames.
type UBMShortlister interface {
	ScoreUBM(frames [][]float64) (*gmm.Shortlist, error)
}

// FastPathConfig configures EnableFastPath.
type FastPathConfig struct {
	// TopC is the shortlist width (default gmm.DefaultShortlistC).
	TopC int
	// Cache holds compiled speaker models across requests, keyed by
	// model digest. nil builds a private metric-less cache of
	// gmm.DefaultModelCacheSize entries; the server passes one wired to
	// its telemetry registry.
	Cache *gmm.ModelCache
}

// fastASV is the compiled scoring state behind the fast path: the
// compiled UBM, the speaker-model cache, the optional batching seam, and
// a per-user memo of speaker-model digests (computing a digest
// serializes the model, which must not happen per request).
type fastASV struct {
	topC        int
	ubm         *gmm.ScoringModel
	cache       *gmm.ModelCache
	shortlister UBMShortlister

	mu      sync.Mutex
	digests map[string]string
}

// SpeakerVerifierConfig configures training.
type SpeakerVerifierConfig struct {
	// Backend selects GMM-UBM or ISV (default GMM-UBM).
	Backend Backend
	// Components is the UBM size (default 32).
	Components int
	// Relevance is the MAP relevance factor (default 4, Spear's choice
	// for small enrollment sets).
	Relevance float64 // unit: dimensionless
	// ISVRank is the session-subspace rank for the ISV back-end
	// (default 10).
	ISVRank int
	// MFCC overrides the feature front-end; the zero value selects
	// features.DefaultMFCCConfig with CMVN disabled. Text-dependent
	// verification of one short passphrase keeps the speaker's static
	// spectral identity in the cepstral mean, which per-utterance CMVN
	// would erase; session variability is instead handled by the model
	// (MAP prior, ISV subspace).
	MFCC *features.MFCCConfig
	// Seed seeds UBM training.
	Seed int64
}

func (c *SpeakerVerifierConfig) setDefaults() {
	if c.Backend == 0 {
		c.Backend = BackendGMMUBM
	}
	if c.Components == 0 {
		c.Components = 32
	}
	if stats.IsZero(c.Relevance) {
		c.Relevance = 4
	}
	if c.ISVRank == 0 {
		c.ISVRank = 10
	}
	if c.MFCC == nil {
		mfcc := features.DefaultMFCCConfig()
		mfcc.CMVN = false
		c.MFCC = &mfcc
	}
}

// ErrUnknownUser is returned when verifying an identity that was never
// enrolled.
var ErrUnknownUser = errors.New("core: unknown user")

// extract runs the MFCC front-end over an utterance.
func (v *SpeakerVerifier) extract(s *audio.Signal) ([][]float64, error) {
	return features.Extract(s, v.mfcc)
}

// TrainSpeakerVerifier builds the back-end from background (non-user)
// speech. background maps speaker → sessions → utterances; it trains the
// UBM and, for the ISV back-end, the session subspace.
func TrainSpeakerVerifier(background map[string][][]*audio.Signal, cfg SpeakerVerifierConfig) (*SpeakerVerifier, error) {
	cfg.setDefaults()
	v := &SpeakerVerifier{
		backend:   cfg.Backend,
		mfcc:      *cfg.MFCC,
		relevance: cfg.Relevance,
		users:     make(map[string]*gmm.Verifier),
		isvUsers:  make(map[string]*gmm.ISVSpeaker),
	}
	// Iterate speakers in sorted order: map order would otherwise make
	// the pooled frame order — and therefore the k-means initialization
	// and the trained UBM — nondeterministic across runs.
	names := make([]string, 0, len(background))
	for spk := range background {
		names = append(names, spk)
	}
	sort.Strings(names)
	var pooled [][]float64
	sessions := make(map[string][][][]float64)
	for _, spk := range names {
		for _, sess := range background[spk] {
			var sessFrames [][]float64
			for _, utt := range sess {
				f, err := v.extract(utt)
				if err != nil {
					return nil, fmt.Errorf("core: extracting background features for %s: %w", spk, err)
				}
				pooled = append(pooled, f...)
				sessFrames = append(sessFrames, f...)
			}
			if len(sessFrames) > 0 {
				sessions[spk] = append(sessions[spk], sessFrames)
			}
		}
	}
	if len(pooled) == 0 {
		return nil, errors.New("core: no background speech for ASV training")
	}
	ubm, err := gmm.TrainUBM(pooled, gmm.TrainConfig{Components: cfg.Components, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: training UBM: %w", err)
	}
	v.ubm = ubm
	if cfg.Backend == BackendISV {
		isv, err := gmm.TrainISV(ubm, sessions, gmm.ISVConfig{Rank: cfg.ISVRank, Relevance: cfg.Relevance})
		if err != nil {
			return nil, fmt.Errorf("core: training ISV: %w", err)
		}
		v.isv = isv
	}
	return v, nil
}

// Enroll registers a user from enrollment utterances (grouped by session
// for the ISV back-end; a flat list may be passed as one session).
func (v *SpeakerVerifier) Enroll(user string, sessions [][]*audio.Signal) error {
	if user == "" {
		return errors.New("core: empty user name")
	}
	if len(sessions) == 0 {
		return fmt.Errorf("core: no enrollment sessions for %q", user)
	}
	var all [][]float64
	var perSession [][][]float64
	for _, sess := range sessions {
		var sessFrames [][]float64
		for _, utt := range sess {
			f, err := v.extract(utt)
			if err != nil {
				return fmt.Errorf("core: extracting enrollment features for %q: %w", user, err)
			}
			all = append(all, f...)
			sessFrames = append(sessFrames, f...)
		}
		if len(sessFrames) > 0 {
			perSession = append(perSession, sessFrames)
		}
	}
	switch v.backend {
	case BackendISV:
		spk, err := v.isv.Enroll(perSession)
		if err != nil {
			return fmt.Errorf("core: ISV enrollment for %q: %w", user, err)
		}
		v.isvUsers[user] = spk
	default:
		ver, err := gmm.NewVerifier(v.ubm, all, v.relevance)
		if err != nil {
			return fmt.Errorf("core: GMM enrollment for %q: %w", user, err)
		}
		v.users[user] = ver
		if f := v.fast; f != nil {
			// Re-enrollment produces a new model: drop the stale digest
			// memo so the next score compiles the fresh one (the old
			// cache entry ages out by LRU).
			f.mu.Lock()
			delete(f.digests, user)
			f.mu.Unlock()
		}
	}
	return nil
}

// Score returns the back-end score of an utterance against a user.
func (v *SpeakerVerifier) Score(user string, utt *audio.Signal) (float64, error) {
	return v.ScoreSpan(nil, user, utt)
}

// ScoreSpan is Score recording the two expensive sub-operations under
// span (nil disables tracing at zero cost): an "mfcc-extract" child
// around the feature front-end and a "gmm-score" child around back-end
// scoring, each carrying its own shape and fan-out children. The caller
// owns span's End.
func (v *SpeakerVerifier) ScoreSpan(span *telemetry.Span, user string, utt *audio.Signal) (float64, error) {
	ex := span.StartSpan("mfcc-extract")
	frames, err := features.ExtractSpan(ex, utt, v.mfcc)
	ex.End()
	if err != nil {
		return 0, fmt.Errorf("core: extracting test features: %w", err)
	}
	sc := span.StartSpan("gmm-score")
	defer sc.End()
	switch v.backend {
	case BackendISV:
		spk, ok := v.isvUsers[user]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownUser, user)
		}
		return spk.ScoreSpan(sc, frames)
	default:
		ver, ok := v.users[user]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownUser, user)
		}
		if f := v.fast; f != nil {
			return f.score(sc, user, ver, frames)
		}
		return ver.ScoreSpan(sc, frames), nil
	}
}

// Verify runs the identity check as a pipeline stage.
func (v *SpeakerVerifier) Verify(user string, utt *audio.Signal) (res StageResult) {
	return v.VerifySpan(nil, user, utt)
}

// VerifySpan is Verify attaching its decision evidence to span (nil
// disables tracing at zero cost): the log-likelihood-ratio score, the
// live accept threshold, and the back-end name, plus the ScoreSpan
// sub-operation children. The caller owns span's End.
func (v *SpeakerVerifier) VerifySpan(span *telemetry.Span, user string, utt *audio.Signal) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageSpeakerID
	span.SetString("backend", v.backend.String())
	span.SetFloat("threshold_llr", v.Threshold, "nat/frame")
	score, err := v.ScoreSpan(span, user, utt)
	if err != nil {
		res.Detail = err.Error()
		return res
	}
	span.SetFloat("llr", score, "nat/frame")
	res.Evidence[0] = EvidenceValue{Metric: EvidenceLLR, Value: score}
	res.Score = score - v.Threshold
	if score >= v.Threshold {
		res.Pass = true
		res.Detail = fmt.Sprintf("speaker accepted (score %.3f ≥ %.3f)", score, v.Threshold)
	} else {
		res.Detail = fmt.Sprintf("speaker rejected (score %.3f < %.3f)", score, v.Threshold)
	}
	return res
}

// Backend returns the configured back-end.
func (v *SpeakerVerifier) Backend() Backend { return v.backend }

// CalibrateThreshold sets the accept threshold from held-out genuine
// utterances of an enrolled user: the minimum genuine score minus the
// safety margin, i.e. the paper's zero-FRR operating point. Margin > 0
// trades FAR headroom for robustness to genuine-score variation.
// EnableFastPath switches the GMM-UBM backend to the compiled top-C
// scoring path: the UBM is compiled once, speaker models compile on
// first use into the configured cache, and each verify scores the
// speaker only on the frame's C best UBM components. Scores stay within
// gmm.ShortlistEpsilon of the exact path; verdicts are identical
// whenever the threshold margin exceeds that bound. Callers that pin
// bit-exact scores (evidence replay of exact-path packs) simply never
// enable it. Not supported on the ISV backend, whose scoring is not
// component-shortlistable.
func (v *SpeakerVerifier) EnableFastPath(cfg FastPathConfig) error {
	if v.backend != BackendGMMUBM {
		return fmt.Errorf("core: fast ASV scoring requires the GMM-UBM backend, not %v", v.backend)
	}
	if cfg.TopC == 0 {
		cfg.TopC = gmm.DefaultShortlistC
	}
	if cfg.TopC < 0 {
		return fmt.Errorf("core: fast ASV shortlist width %d, want ≥ 1", cfg.TopC)
	}
	sm, err := gmm.Compile(v.ubm)
	if err != nil {
		return fmt.Errorf("core: compiling UBM: %w", err)
	}
	cache := cfg.Cache
	if cache == nil {
		cache = gmm.NewModelCache(0, gmm.CacheMetrics{})
	}
	v.fast = &fastASV{topC: cfg.TopC, ubm: sm, cache: cache, digests: map[string]string{}}
	return nil
}

// DisableFastPath returns to the exact scoring path.
func (v *SpeakerVerifier) DisableFastPath() { v.fast = nil }

// FastPath reports whether the compiled scoring path is enabled and, if
// so, its shortlist width.
func (v *SpeakerVerifier) FastPath() (topC int, enabled bool) {
	if v.fast == nil {
		return 0, false
	}
	return v.fast.topC, true
}

// CompiledUBM returns the compiled UBM of the fast path (nil when
// disabled) — what the serving layer's batcher scores against.
func (v *SpeakerVerifier) CompiledUBM() *gmm.ScoringModel {
	if v.fast == nil {
		return nil
	}
	return v.fast.ubm
}

// SetUBMShortlister routes the fast path's UBM pass through b — the
// server's cross-request batcher. Requires EnableFastPath first; nil
// restores direct scoring.
func (v *SpeakerVerifier) SetUBMShortlister(b UBMShortlister) error {
	if v.fast == nil {
		return errors.New("core: enable the fast ASV path before attaching a shortlister")
	}
	v.fast.shortlister = b
	return nil
}

// score runs one fast-path verification: UBM shortlist (direct or
// batched), cached speaker-model compile, shortlist-restricted speaker
// pass, LLR.
func (f *fastASV) score(span *telemetry.Span, user string, ver *gmm.Verifier, frames [][]float64) (float64, error) {
	if len(frames) == 0 {
		return math.Inf(-1), nil
	}
	span.SetString("scoring_path", "fast-topc")
	span.SetInt("top_c", int64(f.topC))
	us := span.StartSpan("ubm-shortlist")
	var sl *gmm.Shortlist
	var err error
	if f.shortlister != nil {
		us.SetBool("batched", true)
		sl, err = f.shortlister.ScoreUBM(frames)
	} else {
		sl, err = f.ubm.TopC(frames, f.topC)
	}
	us.End()
	if err != nil {
		return 0, fmt.Errorf("core: UBM shortlist for %q: %w", user, err)
	}
	sm, err := f.speakerModel(user, ver)
	if err != nil {
		return 0, err
	}
	ms := span.StartSpan("model-shortlist")
	model, err := sm.MeanLogLikelihoodShortlist(frames, sl)
	ms.End()
	if err != nil {
		return 0, fmt.Errorf("core: shortlist scoring for %q: %w", user, err)
	}
	llr := model - sl.MeanLL()
	span.SetFloat("llr", llr, "nat/frame")
	return llr, nil
}

// speakerModel returns the user's compiled speaker model, memoizing the
// model digest per user and compiling through the LRU cache.
func (f *fastASV) speakerModel(user string, ver *gmm.Verifier) (*gmm.ScoringModel, error) {
	f.mu.Lock()
	dig, ok := f.digests[user]
	f.mu.Unlock()
	if !ok {
		var err error
		dig, err = gmm.ModelDigest(ver.Speaker)
		if err != nil {
			return nil, fmt.Errorf("core: digesting speaker model %q: %w", user, err)
		}
		f.mu.Lock()
		f.digests[user] = dig
		f.mu.Unlock()
	}
	sm, err := f.cache.Get(dig, func() (*gmm.ScoringModel, error) { return gmm.Compile(ver.Speaker) })
	if err != nil {
		return nil, fmt.Errorf("core: compiling speaker model %q: %w", user, err)
	}
	return sm, nil
}

// unit: margin score
func (v *SpeakerVerifier) CalibrateThreshold(user string, genuine []*audio.Signal, margin float64) error {
	if len(genuine) == 0 {
		return fmt.Errorf("core: calibration needs genuine utterances for %q", user)
	}
	minScore := math.Inf(1)
	for i, utt := range genuine {
		s, err := v.Score(user, utt)
		if err != nil {
			return fmt.Errorf("core: calibration utterance %d: %w", i, err)
		}
		if s < minScore {
			minScore = s
		}
	}
	v.Threshold = minScore - margin
	return nil
}
