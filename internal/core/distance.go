package core

import (
	"fmt"

	"voiceguard/internal/telemetry"
	"voiceguard/internal/trajectory"
)

// DistanceVerifier implements stage 1: the sound-source distance check
// (§IV-B1). The gesture's sweep must pivot around the sound source within
// the distance threshold Dt, the circle fit must be arc-like (bounded
// residual), and the acoustic radial track must agree that the pivot *is*
// the sound source (bounded radial deviation) — the defense against
// faking the gesture in front of a distant loudspeaker.
type DistanceVerifier struct {
	// MaxDistance is Dt in meters. The paper calibrates Dt = 6 cm; the
	// default adds the estimator's margin on top.
	MaxDistance float64 // unit: m
	// MaxResidual is the maximum RMS circle-fit residual in meters.
	MaxResidual float64 // unit: m
	// MaxRadialStd is the maximum acoustic radial deviation during the
	// sweep in meters.
	MaxRadialStd float64 // unit: m
	// MinTurn is the minimum sweep excursion in radians (rejects
	// motionless replays of the audio channel).
	MinTurn float64 // unit: rad
}

// NewDistanceVerifier returns the verifier at the paper's operating point.
func NewDistanceVerifier() *DistanceVerifier {
	return &DistanceVerifier{
		MaxDistance:  0.075, // Dt = 6 cm + estimator margin
		MaxResidual:  0.01,
		MaxRadialStd: 0.012,
		MinTurn:      0.8,
	}
}

// Verify runs the distance check over a gesture.
func (v *DistanceVerifier) Verify(g *trajectory.Gesture) (res StageResult) {
	return v.VerifySpan(nil, g)
}

// VerifySpan is Verify attaching its decision evidence to span (nil
// disables tracing at zero cost): the estimated quantities and the live
// thresholds they are gated by, plus a "trajectory-estimate" child around
// the circle fit. The caller owns span's End.
func (v *DistanceVerifier) VerifySpan(span *telemetry.Span, g *trajectory.Gesture) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageDistance
	sub := span.StartSpan("trajectory-estimate")
	est, err := g.Estimate()
	sub.End()
	span.SetFloat("threshold_dt_cm", v.MaxDistance*100, "cm")
	span.SetFloat("threshold_residual_mm", v.MaxResidual*1000, "mm")
	span.SetFloat("threshold_radial_std_mm", v.MaxRadialStd*1000, "mm")
	span.SetFloat("threshold_min_turn_rad", v.MinTurn, "rad")
	if err != nil {
		res.Detail = fmt.Sprintf("trajectory estimation failed: %v", err)
		return res
	}
	span.SetFloat("distance_cm", est.Distance*100, "cm")
	span.SetFloat("residual_mm", est.Residual*1000, "mm")
	span.SetFloat("radial_std_mm", est.SweepRadialStd*1000, "mm")
	span.SetFloat("turn_rad", est.Turn, "rad")
	res.Evidence[0] = EvidenceValue{Metric: EvidenceDistanceCM, Value: est.Distance * 100}
	// Score: margin below the distance gate (positive = inside).
	res.Score = v.MaxDistance - est.Distance
	switch {
	case est.Turn < v.MinTurn:
		res.Detail = fmt.Sprintf("sweep turn %.2f rad below minimum %.2f", est.Turn, v.MinTurn)
	case est.Distance > v.MaxDistance:
		res.Detail = fmt.Sprintf("source distance %.1f cm exceeds Dt %.1f cm",
			est.Distance*100, v.MaxDistance*100)
	case est.Residual > v.MaxResidual:
		res.Detail = fmt.Sprintf("trajectory not arc-like (residual %.1f mm)", est.Residual*1000)
	case est.SweepRadialStd > v.MaxRadialStd:
		res.Detail = fmt.Sprintf("sweep not centered on sound source (radial std %.1f mm)",
			est.SweepRadialStd*1000)
	default:
		res.Pass = true
		res.Detail = fmt.Sprintf("source at %.1f cm", est.Distance*100)
	}
	return res
}
