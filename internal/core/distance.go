package core

import (
	"fmt"

	"voiceguard/internal/trajectory"
)

// DistanceVerifier implements stage 1: the sound-source distance check
// (§IV-B1). The gesture's sweep must pivot around the sound source within
// the distance threshold Dt, the circle fit must be arc-like (bounded
// residual), and the acoustic radial track must agree that the pivot *is*
// the sound source (bounded radial deviation) — the defense against
// faking the gesture in front of a distant loudspeaker.
type DistanceVerifier struct {
	// MaxDistance is Dt in meters. The paper calibrates Dt = 6 cm; the
	// default adds the estimator's margin on top.
	MaxDistance float64 // unit: m
	// MaxResidual is the maximum RMS circle-fit residual in meters.
	MaxResidual float64 // unit: m
	// MaxRadialStd is the maximum acoustic radial deviation during the
	// sweep in meters.
	MaxRadialStd float64 // unit: m
	// MinTurn is the minimum sweep excursion in radians (rejects
	// motionless replays of the audio channel).
	MinTurn float64 // unit: rad
}

// NewDistanceVerifier returns the verifier at the paper's operating point.
func NewDistanceVerifier() *DistanceVerifier {
	return &DistanceVerifier{
		MaxDistance:  0.075, // Dt = 6 cm + estimator margin
		MaxResidual:  0.01,
		MaxRadialStd: 0.012,
		MinTurn:      0.8,
	}
}

// Verify runs the distance check over a gesture.
func (v *DistanceVerifier) Verify(g *trajectory.Gesture) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageDistance
	est, err := g.Estimate()
	if err != nil {
		res.Detail = fmt.Sprintf("trajectory estimation failed: %v", err)
		return res
	}
	// Score: margin below the distance gate (positive = inside).
	res.Score = v.MaxDistance - est.Distance
	switch {
	case est.Turn < v.MinTurn:
		res.Detail = fmt.Sprintf("sweep turn %.2f rad below minimum %.2f", est.Turn, v.MinTurn)
	case est.Distance > v.MaxDistance:
		res.Detail = fmt.Sprintf("source distance %.1f cm exceeds Dt %.1f cm",
			est.Distance*100, v.MaxDistance*100)
	case est.Residual > v.MaxResidual:
		res.Detail = fmt.Sprintf("trajectory not arc-like (residual %.1f mm)", est.Residual*1000)
	case est.SweepRadialStd > v.MaxRadialStd:
		res.Detail = fmt.Sprintf("sweep not centered on sound source (radial std %.1f mm)",
			est.SweepRadialStd*1000)
	default:
		res.Pass = true
		res.Detail = fmt.Sprintf("source at %.1f cm", est.Distance*100)
	}
	return res
}
