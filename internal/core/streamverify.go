package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/sensors"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/telemetry"
	"voiceguard/internal/trajectory"
)

// StreamVerifier evaluates a verification session incrementally as its
// channels arrive over the streaming protocol. Chunks accumulate into
// per-channel buffers; a stage is admitted the moment every channel it
// reads is complete, and the session REJECTS the instant any admitted
// stage fails — without waiting for the rest of the upload. ACCEPT still
// requires every configured stage to run and pass at Finish, so the
// cascade semantics (and the never-fabricate-REJECT deadline guarantee)
// match System.VerifyContext exactly.
//
// One extra early exit runs before its channel completes: each
// magnetometer chunk is re-checked via settledMetrics, whose statistics
// are monotone lower bounds of the full-trace values — crossing Mt/βt on
// a prefix proves the complete session would reject, so the loudspeaker
// stage may trip mid-upload (the paper's §IV-B3 signature is strongest
// in the first instants the phone approaches a driver).
//
// A StreamVerifier is not safe for concurrent use: the connection
// handler that owns the stream feeds it frames in arrival order.
type StreamVerifier struct {
	sys     *System
	traceID string
	root    *telemetry.Span
	start   time.Time

	claimedUser string
	pilotHz     float64 // unit: Hz
	sweepStart  float64 // unit: s
	sweepEnd    float64 // unit: s

	gyro, accel, mag *sensors.Trace
	field            []soundfield.Measurement
	capture, voice   *audio.Signal

	helloDone, marksDone                                            bool
	gyroDone, accelDone, magDone, fieldDone, captureDone, voiceDone bool

	gesture  *trajectory.Gesture
	results  map[Stage]*StageResult
	decision *Decision
	dead     bool
}

// ErrStreamClosed is returned when chunks are offered to a verifier that
// already reached a terminal state (decided, failed, or abandoned).
var ErrStreamClosed = errors.New("core: stream verifier is closed")

// NewStreamVerifier opens an incremental verification under the given
// trace ID (empty mints one). The root span starts now, so the eventual
// decision's Elapsed covers the whole stream — upload included — which
// is what "time to decision" means on this path.
func (s *System) NewStreamVerifier(traceID string) (*StreamVerifier, error) {
	if s.Distance == nil && s.Field == nil && s.Speaker == nil && s.Identity == nil {
		return nil, ErrIncompleteSystem
	}
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	root := s.Tracer.StartTrace(traceID, "verify")
	root.SetString("transport", "stream")
	return &StreamVerifier{
		sys:     s,
		traceID: traceID,
		root:    root,
		start:   time.Now(),
		gyro:    &sensors.Trace{Name: "gyro"},
		accel:   &sensors.Trace{Name: "accel"},
		mag:     &sensors.Trace{Name: "mag"},
		results: make(map[Stage]*StageResult),
	}, nil
}

// TraceID returns the session's trace ID.
func (v *StreamVerifier) TraceID() string { return v.traceID }

// Decided returns the decision if the session has already been decided,
// else nil.
func (v *StreamVerifier) Decided() *Decision { return v.decision }

// admit gates every offer: a decided session swallows trailing chunks
// (the connection drains without re-evaluating), a dead one refuses, and
// a dead context abandons the session exactly like VerifyContext —
// surfacing the deadline, never a fabricated rejection.
func (v *StreamVerifier) admit(ctx context.Context) (open bool, err error) {
	if v.decision != nil {
		return false, nil
	}
	if v.dead {
		return false, ErrStreamClosed
	}
	if err := ctx.Err(); err != nil {
		v.Abandon("deadline_exceeded")
		return false, fmt.Errorf("core: stream verification abandoned after %v: %w", time.Since(v.start), err)
	}
	return true, nil
}

// OfferHello records the session's identity claim and ranging pilot.
// unit: pilotHz Hz
func (v *StreamVerifier) OfferHello(ctx context.Context, claimedUser string, pilotHz float64) error {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return err
	}
	if v.helloDone {
		return v.fail(fmt.Errorf("core: duplicate hello on stream %s", v.traceID))
	}
	v.claimedUser = claimedUser
	v.pilotHz = pilotHz
	v.helloDone = true
	return nil
}

// SetMarks records the ranging sweep boundaries.
// unit: sweepStart s, sweepEnd s
func (v *StreamVerifier) SetMarks(ctx context.Context, sweepStart, sweepEnd float64) error {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return err
	}
	v.sweepStart, v.sweepEnd = sweepStart, sweepEnd
	v.marksDone = true
	return nil
}

// OfferGyro extends the gyroscope trace; last closes the channel. A
// non-nil decision is an early REJECT — the session is over.
func (v *StreamVerifier) OfferGyro(ctx context.Context, samples []sensors.Sample, last bool) (*Decision, error) {
	return v.offerSensor(ctx, v.gyro, &v.gyroDone, samples, last)
}

// OfferAccel extends the accelerometer trace; last closes the channel.
func (v *StreamVerifier) OfferAccel(ctx context.Context, samples []sensors.Sample, last bool) (*Decision, error) {
	return v.offerSensor(ctx, v.accel, &v.accelDone, samples, last)
}

// OfferMag extends the magnetometer trace; last closes the channel.
// Every magnetometer chunk additionally runs the settled-prefix
// loudspeaker check, so a session waving the phone at a speaker driver
// can reject here long before its audio uploads.
func (v *StreamVerifier) OfferMag(ctx context.Context, samples []sensors.Sample, last bool) (*Decision, error) {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return nil, err
	}
	if err := appendSensor(v.mag, &v.magDone, samples, last); err != nil {
		return nil, v.fail(err)
	}
	if !v.magDone && v.sys.Speaker != nil && v.results[StageLoudspeaker] == nil {
		if m, ok := settledMetrics(v.mag); ok && (m.Swing >= v.sys.Speaker.Mt || m.MaxRate >= v.sys.Speaker.Bt) {
			res := v.runStage(ctx, StageLoudspeaker, func(sp *telemetry.Span) StageResult {
				sp.SetBool("settled_prefix", true)
				sp.SetInt("prefix_samples", int64(v.mag.Len()))
				return v.sys.Speaker.VerifyMetricsSpan(sp, m)
			})
			if !res.Pass {
				return v.decide(), nil
			}
		}
	}
	return v.advance(ctx)
}

// offerSensor is the shared gyro/accel append-then-advance path.
func (v *StreamVerifier) offerSensor(ctx context.Context, tr *sensors.Trace, done *bool, samples []sensors.Sample, last bool) (*Decision, error) {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return nil, err
	}
	if err := appendSensor(tr, done, samples, last); err != nil {
		return nil, v.fail(err)
	}
	return v.advance(ctx)
}

func appendSensor(tr *sensors.Trace, done *bool, samples []sensors.Sample, last bool) error {
	if *done {
		return fmt.Errorf("core: %s chunk after channel close", tr.Name)
	}
	tr.Samples = append(tr.Samples, samples...)
	if last {
		*done = true
	}
	return nil
}

// OfferField extends the sound-field sweep; last closes the channel.
func (v *StreamVerifier) OfferField(ctx context.Context, points []soundfield.Measurement, last bool) (*Decision, error) {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return nil, err
	}
	if v.fieldDone {
		return nil, v.fail(fmt.Errorf("core: field chunk after channel close"))
	}
	v.field = append(v.field, points...)
	if last {
		v.fieldDone = true
	}
	return v.advance(ctx)
}

// OfferCapture extends the gesture-capture audio channel (the ranging
// sweep recording); last closes it. Rate must not change mid-channel.
// unit: rate Hz
func (v *StreamVerifier) OfferCapture(ctx context.Context, rate float64, samples []float64, last bool) (*Decision, error) {
	return v.offerAudio(ctx, &v.capture, &v.captureDone, "capture", rate, samples, last)
}

// OfferVoice extends the passphrase audio channel; last closes it.
// unit: rate Hz
func (v *StreamVerifier) OfferVoice(ctx context.Context, rate float64, samples []float64, last bool) (*Decision, error) {
	return v.offerAudio(ctx, &v.voice, &v.voiceDone, "voice", rate, samples, last)
}

// unit: rate Hz
func (v *StreamVerifier) offerAudio(ctx context.Context, sig **audio.Signal, done *bool, name string, rate float64, samples []float64, last bool) (*Decision, error) {
	open, err := v.admit(ctx)
	if !open || err != nil {
		return nil, err
	}
	if *done {
		return nil, v.fail(fmt.Errorf("core: %s audio chunk after channel close", name))
	}
	if *sig == nil {
		*sig = &audio.Signal{Rate: rate}
	} else if (*sig).Rate != rate { //lint:allow floatcmp the wire carries exact float64 bits; any change is a protocol error
		return nil, v.fail(fmt.Errorf("core: %s audio rate changed mid-stream (%v -> %v)", name, (*sig).Rate, rate))
	}
	(*sig).Samples = append((*sig).Samples, samples...)
	if last {
		*done = true
	}
	return v.advance(ctx)
}

// Finish seals the session: every channel must be closed, the assembled
// session must validate, and every configured stage must have run (the
// stages admitted last run here). Accept requires all of them to pass —
// identical to the HTTP cascade.
func (v *StreamVerifier) Finish(ctx context.Context) (Decision, error) {
	if v.decision != nil {
		return *v.decision, nil
	}
	if _, err := v.admit(ctx); err != nil {
		return Decision{TraceID: v.traceID}, err
	}
	if v.dead {
		return Decision{TraceID: v.traceID}, ErrStreamClosed
	}
	if !v.helloDone || !v.marksDone {
		return Decision{TraceID: v.traceID}, v.fail(fmt.Errorf("core: finish before hello/segment marks"))
	}
	for name, done := range map[string]bool{
		"gyro": v.gyroDone, "accel": v.accelDone, "mag": v.magDone,
		"field": v.fieldDone, "capture": v.captureDone, "voice": v.voiceDone,
	} {
		if !done {
			return Decision{TraceID: v.traceID}, v.fail(fmt.Errorf("core: finish before %s channel closed", name))
		}
	}
	// Validation parity with the HTTP path: the same session contents
	// must clear the same bar before a verdict exists.
	if err := v.buildGesture(); err != nil {
		return Decision{TraceID: v.traceID}, v.fail(err)
	}
	session := &SessionData{
		ClaimedUser: v.claimedUser,
		Gesture:     v.gesture,
		Field:       v.field,
		Voice:       v.voice,
	}
	if err := session.Validate(); err != nil {
		return Decision{TraceID: v.traceID}, v.fail(err)
	}
	if d, err := v.advance(ctx); err != nil {
		return Decision{TraceID: v.traceID}, err
	} else if d != nil {
		return *d, nil
	}
	for _, st := range stageOrder {
		if v.configured(st) && v.results[st] == nil {
			return Decision{TraceID: v.traceID}, v.fail(fmt.Errorf("core: stage %s never became admissible", st.MetricName()))
		}
	}
	return *v.decide(), nil
}

// Abandon terminates an undecided session without a verdict (connection
// loss, deadline, shutdown). The trace records the outcome so abandoned
// streams are distinguishable in the flight recorder; like the HTTP
// deadline path it never fabricates a rejection.
func (v *StreamVerifier) Abandon(outcome string) {
	if v.decision != nil || v.dead {
		return
	}
	v.dead = true
	v.root.SetString("outcome", outcome)
	v.sys.Tracer.Finish(v.root, telemetry.Verdict{Accepted: false, Elapsed: time.Since(v.start)})
}

// fail marks the verifier dead on a malformed stream or invalid session
// and returns the error for the caller to propagate.
func (v *StreamVerifier) fail(err error) error {
	v.Abandon("error")
	return err
}

// stageOrder is the paper's cascade order (Fig. 4): decisions are
// assembled in this order no matter when each stage actually ran.
var stageOrder = [...]Stage{StageDistance, StageSoundField, StageLoudspeaker, StageSpeakerID}

func (v *StreamVerifier) configured(st Stage) bool {
	switch st {
	case StageDistance:
		return v.sys.Distance != nil
	case StageSoundField:
		return v.sys.Field != nil
	case StageLoudspeaker:
		return v.sys.Speaker != nil
	case StageSpeakerID:
		return v.sys.Identity != nil
	default:
		return false
	}
}

// advance runs every stage whose inputs just became complete, in the
// paper's order, stopping at the first failure. A non-nil decision is a
// REJECT (early relative to the frames still in flight).
func (v *StreamVerifier) advance(ctx context.Context) (*Decision, error) {
	type admission struct {
		st    Stage
		ready bool
		run   func(sp *telemetry.Span) StageResult
	}
	distReady := v.helloDone && v.marksDone && v.gyroDone && v.accelDone && v.magDone && v.captureDone
	if v.sys.Distance != nil && v.results[StageDistance] == nil && distReady {
		if err := v.buildGesture(); err != nil {
			return nil, v.fail(err)
		}
	}
	plan := []admission{
		{StageDistance, distReady, func(sp *telemetry.Span) StageResult {
			return v.sys.Distance.VerifySpan(sp, v.gesture)
		}},
		{StageSoundField, v.fieldDone, func(sp *telemetry.Span) StageResult {
			return v.sys.Field.VerifySpan(sp, v.field)
		}},
		{StageLoudspeaker, v.magDone, func(sp *telemetry.Span) StageResult {
			return v.sys.Speaker.VerifySpan(sp, v.mag)
		}},
		{StageSpeakerID, v.helloDone && v.voiceDone, func(sp *telemetry.Span) StageResult {
			return v.sys.Identity.VerifySpan(sp, v.claimedUser, v.voice)
		}},
	}
	for _, a := range plan {
		if !a.ready || !v.configured(a.st) || v.results[a.st] != nil {
			continue
		}
		if res := v.runStage(ctx, a.st, a.run); !res.Pass {
			return v.decide(), nil
		}
	}
	return nil, nil
}

// buildGesture fuses the sensor and capture channels into the gesture
// the distance stage (and evidence parity) needs. Idempotent.
func (v *StreamVerifier) buildGesture() error {
	if v.gesture != nil {
		return nil
	}
	g, err := trajectory.FromUpload(v.gyro, v.accel, v.mag, v.capture, v.pilotHz, v.sweepStart, v.sweepEnd)
	if err != nil {
		return err
	}
	v.gesture = g
	return nil
}

// runStage mirrors VerifyContext's per-stage harness: fault-injection
// hook at admission, an evidence-carrying "stage:<name>" span, and the
// result stamped with its own Elapsed by the stage implementation.
func (v *StreamVerifier) runStage(ctx context.Context, st Stage, verify func(sp *telemetry.Span) StageResult) StageResult {
	if v.sys.StageHook != nil {
		v.sys.StageHook(ctx, st)
	}
	sp := v.root.StartSpan(telemetry.StageSpanName + st.MetricName())
	res := verify(sp)
	endStageSpan(sp, res)
	v.results[st] = &res
	return res
}

// decide assembles the verdict from the stages that ran, in the paper's
// order, truncated at the first failure — the same shape
// VerifyContext produces — and finishes the trace.
func (v *StreamVerifier) decide() *Decision {
	d := &Decision{TraceID: v.traceID, Accepted: true}
	for _, st := range stageOrder {
		r := v.results[st]
		if r == nil {
			continue
		}
		d.Stages = append(d.Stages, *r)
		if !r.Pass {
			d.FailedStage = st
			d.Accepted = false
			break
		}
	}
	d.Elapsed = time.Since(v.start)
	verdict := telemetry.Verdict{Accepted: d.Accepted, Elapsed: d.Elapsed}
	if !d.Accepted {
		verdict.FailedStage = d.FailedStage.MetricName()
	}
	v.sys.Tracer.Finish(v.root, verdict)
	v.decision = d
	return d
}
