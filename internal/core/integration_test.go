package core

// Full four-stage integration tests: the complete cascade with the ASV
// back-end attached, exercised end-to-end by attack sessions. This is the
// deployment configuration of the paper's Fig. 4.

import (
	"math/rand"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/speech"
)

// fullSystem builds all four stages, trains the ASV on a background
// roster, enrolls the victim, and calibrates the victim's threshold on
// held-out genuine utterances.
func fullSystem(t *testing.T, victim speech.Profile, passphrase string, seed int64) *System {
	t.Helper()
	sys, err := BuildSystem(SystemConfig{FieldSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	bg := buildBackground(t, 5, seed+1)
	verifier, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Components: 16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	synth, err := speech.NewSynthesizer(victim, rng)
	if err != nil {
		t.Fatal(err)
	}
	var enroll []*audio.Signal
	for k := 0; k < 4; k++ {
		utt, err := synth.SayDigits(passphrase)
		if err != nil {
			t.Fatal(err)
		}
		enroll = append(enroll, utt)
	}
	if err := verifier.Enroll(victim.Name, [][]*audio.Signal{enroll}); err != nil {
		t.Fatal(err)
	}
	// Calibrate threshold for zero FRR on fresh genuine trials.
	minG := 1e18
	for k := 0; k < 3; k++ {
		utt, err := synth.SayDigits(passphrase)
		if err != nil {
			t.Fatal(err)
		}
		s, err := verifier.Score(victim.Name, utt)
		if err != nil {
			t.Fatal(err)
		}
		if s < minG {
			minG = s
		}
	}
	verifier.Threshold = minG - 0.3
	sys.AttachIdentity(verifier)
	return sys
}

func TestFullCascadeRunsAllFourStages(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	victim := speech.NewDistinctRoster(2, 200, 1.2).Profiles()[0]
	sys := fullSystem(t, victim, "135792", 200)
	_ = rng

	session := genuineSessionFor(t, victim, "135792", 201)
	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("genuine rejected at %v: %s", d.FailedStage, d.Stages[len(d.Stages)-1].Detail)
	}
	if len(d.Stages) != 4 {
		t.Fatalf("stages executed = %d, want 4", len(d.Stages))
	}
	want := []Stage{StageDistance, StageSoundField, StageLoudspeaker, StageSpeakerID}
	for i, st := range d.Stages {
		if st.Stage != want[i] {
			t.Errorf("stage %d = %v, want %v", i, st.Stage, want[i])
		}
	}
}

func TestFullCascadeStopsImitatorAtIdentityStage(t *testing.T) {
	roster := speech.NewDistinctRoster(2, 210, 1.5).Profiles()
	victim, impostor := roster[0], roster[1]
	sys := fullSystem(t, victim, "864209", 210)

	rng := rand.New(rand.NewSource(211))
	mimicked := speech.Imitate(impostor, victim, speech.ImitatorProfessional, rng)
	session := genuineSessionFor(t, mimicked, "864209", 212)
	session.ClaimedUser = victim.Name

	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("imitation attack accepted by the full cascade")
	}
	if d.FailedStage != StageSpeakerID {
		t.Errorf("imitation rejected at %v, want the identity stage (stages 1-3 must pass a live human)",
			d.FailedStage)
	}
}

// TestVerifyParallelStagesKeepCascadeSemantics pins the fan-out contract:
// stages execute speculatively in parallel, but the decision must be
// indistinguishable from the serial cascade — stage results in paper
// order, truncated at the first failure, FailedStage naming that stage.
// (-cpu=1,4 in CI runs this against both the serial fallback and a real
// fork-join.)
func TestVerifyParallelStagesKeepCascadeSemantics(t *testing.T) {
	roster := speech.NewDistinctRoster(2, 230, 1.5).Profiles()
	victim, impostor := roster[0], roster[1]
	sys := fullSystem(t, victim, "513579", 230)

	// An identity-stage failure: a physically present impostor speaking in
	// their own voice passes all three physical stages, so a truncation
	// bug or an out-of-order assembly would be visible.
	session := genuineSessionFor(t, impostor, "513579", 232)
	session.ClaimedUser = victim.Name

	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted {
		t.Fatal("impostor voice accepted as the victim")
	}
	order := []Stage{StageDistance, StageSoundField, StageLoudspeaker, StageSpeakerID}
	if len(d.Stages) != 4 {
		t.Fatalf("stages recorded = %d, want the full cascade up to the identity failure", len(d.Stages))
	}
	for i, st := range d.Stages {
		if st.Stage != order[i] {
			t.Errorf("stage %d = %v, want %v (paper order)", i, st.Stage, order[i])
		}
	}
	for i, st := range d.Stages[:3] {
		if !st.Pass {
			t.Errorf("physical stage %d (%v) failed; want the identity stage to be the first failure", i, st.Stage)
		}
	}
	if d.FailedStage != StageSpeakerID {
		t.Errorf("FailedStage = %v, want %v", d.FailedStage, StageSpeakerID)
	}
	if d.Stages[3].Pass {
		t.Error("identity stage recorded as passing in a rejected decision")
	}
}

// genuineSessionFor builds a physically genuine session for any speaking
// profile (the speaker stands at mouth distance; no loudspeaker).
func genuineSessionFor(t *testing.T, p speech.Profile, passphrase string, seed int64) *SessionData {
	t.Helper()
	// attack.Genuine would create an import cycle (attack imports core),
	// so assemble the session from the substrates directly.
	rng := rand.New(rand.NewSource(seed))
	g := simulateGenuineGesture(t, seed)
	field := sweepMouth(t, rng)
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	voice, err := synth.SayDigits(passphrase)
	if err != nil {
		t.Fatal(err)
	}
	return &SessionData{
		ClaimedUser: p.Name,
		Gesture:     g,
		Field:       field,
		Voice:       voice,
	}
}
