package core

import (
	"fmt"

	"voiceguard/internal/sensors"
	"voiceguard/internal/telemetry"
)

// LoudspeakerDetector implements stage 3 (§IV-B3): it flags sessions
// whose magnetometer trace shows the static and dynamic signature of a
// conventional loudspeaker. Two statistics are thresholded jointly, as in
// the paper: the magnitude swing of the field during the gesture
// (approaching a magnet swings |B| by tens of µT) against Mt, and the
// maximum change rate against βt. Magnitude-based statistics are used
// because |B| is invariant to phone orientation.
type LoudspeakerDetector struct {
	// Mt is the magnitude-swing threshold in µT.
	Mt float64 // unit: µT
	// Bt is the change-rate threshold in µT/s.
	Bt float64 // unit: µT/s
}

// NewLoudspeakerDetector returns the detector at the paper's operating
// point for a quiet environment.
func NewLoudspeakerDetector() *LoudspeakerDetector {
	return &LoudspeakerDetector{Mt: 10, Bt: 150}
}

// Metrics are the detector's raw statistics for one trace.
type Metrics struct {
	// Swing is max|B| - min|B| over the gesture, µT.
	Swing float64 // unit: µT
	// MaxRate is the maximum |d|B|/dt|, µT/s.
	MaxRate float64 // unit: µT/s
}

// Measure computes the detection statistics of a magnetometer trace.
func Measure(mag *sensors.Trace) Metrics {
	mags := mag.Magnitudes()
	if len(mags) == 0 {
		return Metrics{}
	}
	// Light smoothing (3-sample moving average) so single-sample sensor
	// noise does not dominate the rate statistic.
	sm := make([]float64, len(mags))
	for i := range mags {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi >= len(mags) {
			hi = len(mags) - 1
		}
		var s float64
		for k := lo; k <= hi; k++ {
			s += mags[k]
		}
		sm[i] = s / float64(hi-lo+1)
	}
	minV, maxV := sm[0], sm[0]
	for _, v := range sm {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var maxRate float64
	for i := 1; i < len(sm); i++ {
		dt := mag.Samples[i].T - mag.Samples[i-1].T
		if dt <= 0 {
			continue
		}
		r := (sm[i] - sm[i-1]) / dt
		if r < 0 {
			r = -r
		}
		if r > maxRate {
			maxRate = r
		}
	}
	return Metrics{Swing: maxV - minV, MaxRate: maxRate}
}

// settledMetrics computes the detection statistics over the *settled*
// prefix of an in-flight magnetometer trace: only smoothed magnitudes
// whose 3-sample window can no longer change when more samples arrive
// (indices 0..len-2 — index len-1 still awaits its right neighbor).
// Every settled value equals the value Measure will compute for the full
// trace, so the returned swing and max-rate are lower bounds of the
// final statistics and monotone nondecreasing as the trace grows: a
// prefix that crosses Mt/βt guarantees the full session rejects. This is
// the soundness argument behind the streaming early exit — Measure on a
// raw prefix would not do, because its boundary sample is smoothed over
// a 2-wide window and can overshoot the final 3-wide value.
//
// ok is false while fewer than two settled values exist (trace shorter
// than 3 samples); the prefix carries no decisive evidence yet.
func settledMetrics(mag *sensors.Trace) (m Metrics, ok bool) {
	if mag == nil {
		return Metrics{}, false
	}
	mags := mag.Magnitudes()
	n := len(mags) - 1 // settled count: index n-1 of the prefix is still open
	if n < 2 {
		return Metrics{}, false
	}
	sm := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i - 1
		if lo < 0 {
			lo = 0
		}
		hi := i + 1 // always < len(mags): settled by construction
		var s float64
		for k := lo; k <= hi; k++ {
			s += mags[k]
		}
		sm[i] = s / float64(hi-lo+1)
	}
	minV, maxV := sm[0], sm[0]
	for _, v := range sm {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var maxRate float64
	for i := 1; i < n; i++ {
		dt := mag.Samples[i].T - mag.Samples[i-1].T
		if dt <= 0 {
			continue
		}
		r := (sm[i] - sm[i-1]) / dt
		if r < 0 {
			r = -r
		}
		if r > maxRate {
			maxRate = r
		}
	}
	return Metrics{Swing: maxV - minV, MaxRate: maxRate}, true
}

// Verify runs loudspeaker detection on a magnetometer trace. Pass means
// "no loudspeaker detected".
func (d *LoudspeakerDetector) Verify(mag *sensors.Trace) (res StageResult) {
	return d.VerifySpan(nil, mag)
}

// VerifySpan is Verify attaching its decision evidence to span (nil
// disables tracing at zero cost): the measured field swing and change
// rate with the live Mt/βt thresholds (which Calibrate may have raised),
// plus a "field-measure" child around statistic extraction. The caller
// owns span's End.
func (d *LoudspeakerDetector) VerifySpan(span *telemetry.Span, mag *sensors.Trace) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageLoudspeaker
	span.SetFloat("threshold_mt_ut", d.Mt, "µT")
	span.SetFloat("threshold_beta_ut_per_s", d.Bt, "µT/s")
	if mag == nil || mag.Len() < 2 {
		res.Detail = "no magnetometer trace"
		return res
	}
	sub := span.StartSpan("field-measure")
	m := Measure(mag)
	sub.End()
	d.judgeSpan(span, m, &res)
	return res
}

// VerifyMetricsSpan judges precomputed detection statistics against the
// live thresholds, attaching the same evidence VerifySpan would. The
// streaming path uses it to reject on a settled magnetometer prefix
// (settledMetrics) before the trace finishes uploading; the statistics
// are lower bounds of the full-trace values, so a reject here is exactly
// the reject the complete session would earn. The caller owns span's
// End.
func (d *LoudspeakerDetector) VerifyMetricsSpan(span *telemetry.Span, m Metrics) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageLoudspeaker
	span.SetFloat("threshold_mt_ut", d.Mt, "µT")
	span.SetFloat("threshold_beta_ut_per_s", d.Bt, "µT/s")
	d.judgeSpan(span, m, &res)
	return res
}

// judgeSpan scores measured statistics against the thresholds, stamping
// span attributes, evidence, score and verdict onto res. Shared by
// VerifySpan (full trace) and VerifyMetricsSpan (streaming prefix).
func (d *LoudspeakerDetector) judgeSpan(span *telemetry.Span, m Metrics, res *StageResult) {
	span.SetFloat("field_ut", m.Swing, "µT")
	span.SetFloat("beta_ut_per_s", m.MaxRate, "µT/s")
	res.Evidence[0] = EvidenceValue{Metric: EvidenceFieldUT, Value: m.Swing}
	res.Evidence[1] = EvidenceValue{Metric: EvidenceBetaUTPerS, Value: m.MaxRate}
	// Score: normalized margin below the nearer threshold (positive =
	// clean).
	swingMargin := 1 - m.Swing/d.Mt
	rateMargin := 1 - m.MaxRate/d.Bt
	res.Score = swingMargin
	if rateMargin < res.Score {
		res.Score = rateMargin
	}
	switch {
	case m.Swing >= d.Mt:
		res.Detail = fmt.Sprintf("magnetic swing %.1f µT ≥ Mt %.1f µT", m.Swing, d.Mt)
	case m.MaxRate >= d.Bt:
		res.Detail = fmt.Sprintf("magnetic rate %.0f µT/s ≥ βt %.0f µT/s", m.MaxRate, d.Bt)
	default:
		res.Pass = true
		res.Detail = fmt.Sprintf("clean field (swing %.1f µT, rate %.0f µT/s)", m.Swing, m.MaxRate)
	}
}

// Calibrate implements the §VII adaptive-thresholding extension: given an
// ambient magnetometer recording taken *before* the gesture (phone held
// still), the thresholds are raised above the observed environmental
// swing and rate so that high-EMF environments (computer, car) do not
// drown the detector in false alarms. The margins keep genuine
// loudspeaker signatures (tens of µT up close) detectable.
func (d *LoudspeakerDetector) Calibrate(ambient *sensors.Trace) {
	if ambient == nil || ambient.Len() < 2 {
		return
	}
	m := Measure(ambient)
	base := NewLoudspeakerDetector()
	if mt := 2.5*m.Swing + 4; mt > base.Mt {
		d.Mt = mt
	} else {
		d.Mt = base.Mt
	}
	if bt := 2.5*m.MaxRate + 40; bt > base.Bt {
		d.Bt = bt
	} else {
		d.Bt = base.Bt
	}
}
