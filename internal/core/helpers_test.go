package core

import (
	"math/rand"
	"testing"

	"voiceguard/internal/magnetics"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

// simulateGenuineGesture renders the standard mouth-distance gesture in a
// quiet environment.
func simulateGenuineGesture(t *testing.T, seed int64) *trajectory.Gesture {
	t.Helper()
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(0.06),
		Scene:   magnetics.NewEnvironment(magnetics.EnvQuiet, seed),
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sweepMouth samples a human-mouth sound field at the standard distance.
func sweepMouth(t *testing.T, rng *rand.Rand) []soundfield.Measurement {
	t.Helper()
	ms, err := soundfield.Sweep(soundfield.Mouth(), soundfield.DefaultSweep(0.06), rng)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}
