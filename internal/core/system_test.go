package core

import (
	"math/rand"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/speech"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildBackground renders a small background corpus for ASV training.
func buildBackground(t testing.TB, nSpeakers int, seed int64) map[string][][]*audio.Signal {
	t.Helper()
	roster := speech.NewRoster(nSpeakers, seed)
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions: 2, UtterancesPerSession: 2, Digits: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][][]*audio.Signal)
	bySpk := speech.BySpeaker(utts)
	for spk, us := range bySpk {
		sessions := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			sessions[u.Session] = append(sessions[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			out[spk] = append(out[spk], sessions[s])
		}
	}
	return out
}

func TestSpeakerVerifierGMMSeparates(t *testing.T) {
	bg := buildBackground(t, 4, 100)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Components: 16, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if v.Backend() != BackendGMMUBM {
		t.Errorf("backend = %v", v.Backend())
	}
	// Enroll a fresh victim and test genuine vs impostor.
	rng := newTestRand(101)
	victim := speech.RandomProfile("victim", rng)
	other := speech.RandomProfile("other", rng)
	enroll := renderUtterances(t, victim, "135790", 4, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll}); err != nil {
		t.Fatal(err)
	}
	genuine := renderUtterances(t, victim, "135790", 1, rng)[0]
	impostor := renderUtterances(t, other, "135790", 1, rng)[0]
	gs, err := v.Score("victim", genuine)
	if err != nil {
		t.Fatal(err)
	}
	is, err := v.Score("victim", impostor)
	if err != nil {
		t.Fatal(err)
	}
	if gs <= is {
		t.Errorf("genuine %v <= impostor %v", gs, is)
	}
	// Stage verdict at a threshold between the two scores.
	v.Threshold = (gs + is) / 2
	if !v.Verify("victim", genuine).Pass {
		t.Error("genuine rejected at midpoint threshold")
	}
	if v.Verify("victim", impostor).Pass {
		t.Error("impostor accepted at midpoint threshold")
	}
}

func renderUtterances(t testing.TB, p speech.Profile, digits string, n int, rng *rand.Rand) []*audio.Signal {
	t.Helper()
	synth, err := speech.NewSynthesizer(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*audio.Signal, n)
	for i := range out {
		s, err := synth.SayDigits(digits)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

func TestSpeakerVerifierISV(t *testing.T) {
	bg := buildBackground(t, 5, 102)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{
		Backend: BackendISV, Components: 16, ISVRank: 4, Seed: 102,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(103)
	victim := speech.RandomProfile("victim", rng)
	other := speech.RandomProfile("other", rng)
	enroll := renderUtterances(t, victim, "246801", 3, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll[:2], enroll[2:]}); err != nil {
		t.Fatal(err)
	}
	genuine := renderUtterances(t, victim, "246801", 1, rng)[0]
	impostor := renderUtterances(t, other, "246801", 1, rng)[0]
	gs, err := v.Score("victim", genuine)
	if err != nil {
		t.Fatal(err)
	}
	is, err := v.Score("victim", impostor)
	if err != nil {
		t.Fatal(err)
	}
	if gs <= is {
		t.Errorf("ISV genuine %v <= impostor %v", gs, is)
	}
}

func TestSpeakerVerifierErrors(t *testing.T) {
	if _, err := TrainSpeakerVerifier(nil, SpeakerVerifierConfig{}); err == nil {
		t.Error("empty background accepted")
	}
	bg := buildBackground(t, 3, 104)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Components: 8, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Enroll("", nil); err == nil {
		t.Error("empty user accepted")
	}
	if err := v.Enroll("u", nil); err == nil {
		t.Error("empty sessions accepted")
	}
	rng := newTestRand(105)
	p := speech.RandomProfile("p", rng)
	utt := renderUtterances(t, p, "12", 1, rng)[0]
	if _, err := v.Score("ghost", utt); err == nil {
		t.Error("unknown user accepted")
	}
	res := v.Verify("ghost", utt)
	if res.Pass {
		t.Error("unknown user passed stage")
	}
	if BackendGMMUBM.String() != "gmm-ubm" || BackendISV.String() != "isv" || Backend(9).String() != "unknown" {
		t.Error("backend labels")
	}
}

func TestBuildSystemAndVerifyCascade(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Distance == nil || sys.Field == nil || sys.Speaker == nil {
		t.Fatal("stages missing")
	}
	// Ablations drop stages.
	abl, err := BuildSystem(SystemConfig{DisableDistance: true, DisableField: true, DisableMagnetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if abl.Distance != nil || abl.Field != nil || abl.Speaker != nil {
		t.Error("ablation did not drop stages")
	}
	if _, err := abl.Verify(&SessionData{}); err == nil {
		t.Error("invalid session accepted")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	bg := buildBackground(t, 4, 400)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Components: 8, Seed: 400})
	if err != nil {
		t.Fatal(err)
	}
	rng := newTestRand(401)
	victim := speech.RandomProfile("victim", rng)
	enroll := renderUtterances(t, victim, "987654", 3, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll}); err != nil {
		t.Fatal(err)
	}
	cal := renderUtterances(t, victim, "987654", 3, rng)
	if err := v.CalibrateThreshold("victim", cal, 0.05); err != nil {
		t.Fatal(err)
	}
	// All calibration utterances are accepted at the calibrated point.
	for _, utt := range cal {
		if !v.Verify("victim", utt).Pass {
			t.Error("calibration utterance rejected after calibration")
		}
	}
	if err := v.CalibrateThreshold("victim", nil, 0); err == nil {
		t.Error("empty calibration accepted")
	}
	if err := v.CalibrateThreshold("ghost", cal, 0); err == nil {
		t.Error("unknown user calibration accepted")
	}
}
