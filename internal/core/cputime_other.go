//go:build !linux

package core

import "time"

// threadCPUTime is unavailable off Linux; stage CPU attribution
// degrades to zero deltas (Elapsed wall time still reports).
func threadCPUTime() time.Duration { return 0 }
