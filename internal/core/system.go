package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"voiceguard/internal/parallel"
	"voiceguard/internal/sensors"
	"voiceguard/internal/telemetry"
)

// System is the assembled VoiceGuard pipeline.
type System struct {
	// Distance is stage 1.
	Distance *DistanceVerifier
	// Field is stage 2.
	Field *SoundFieldVerifier
	// Speaker is stage 3 (loudspeaker detection).
	Speaker *LoudspeakerDetector
	// Identity is stage 4.
	Identity *SpeakerVerifier
	// Tracer, when set, records an evidence-carrying span tree per
	// verification: one "stage:<name>" span per executed stage carrying
	// the stage's measured quantities and live thresholds, with sub-op
	// and worker-block children below. Nil disables tracing at the cost
	// of one pointer test per call.
	Tracer *telemetry.Tracer
	// StageHook, when set, runs at the start of every stage verification
	// with the request context and the stage about to execute. It is the
	// fault-injection seam the deadline and load-shedding tests use to
	// make a stage artificially slow or hung (a hook that selects on
	// ctx.Done simulates a stalled sensor back-end); production
	// deployments leave it nil.
	StageHook func(ctx context.Context, st Stage)
}

// SystemConfig assembles a System with defaults.
type SystemConfig struct {
	// FieldSeed seeds the sound-field verifier's training sweeps.
	FieldSeed int64
	// ASV configures the identity back-end.
	ASV SpeakerVerifierConfig
	// DisableDistance, DisableField and DisableMagnetic drop individual
	// stages — used by the ablation benchmarks, not production.
	DisableDistance, DisableField, DisableMagnetic bool
}

// BuildSystem assembles the machine-attack stages (1–3). The ASV stage is
// attached separately with AttachIdentity because many experiments run
// without it (the paper's §VI evaluates the anti-spoofing subsystem in
// isolation, Spear handling human impostors).
func BuildSystem(cfg SystemConfig) (*System, error) {
	s := &System{}
	if !cfg.DisableDistance {
		s.Distance = NewDistanceVerifier()
	}
	if !cfg.DisableField {
		mouth, machine, err := DefaultSoundFieldTraining(cfg.FieldSeed)
		if err != nil {
			return nil, fmt.Errorf("core: generating sound-field training data: %w", err)
		}
		fv, err := TrainSoundFieldVerifier(mouth, machine, cfg.FieldSeed)
		if err != nil {
			return nil, err
		}
		s.Field = fv
	}
	if !cfg.DisableMagnetic {
		s.Speaker = NewLoudspeakerDetector()
	}
	return s, nil
}

// AttachIdentity plugs in a trained ASV back-end as stage 4.
func (s *System) AttachIdentity(v *SpeakerVerifier) { s.Identity = v }

// CalibrateEnvironment applies §VII adaptive thresholding from an ambient
// magnetometer recording.
func (s *System) CalibrateEnvironment(ambient *sensors.Trace) {
	if s.Speaker != nil {
		s.Speaker.Calibrate(ambient)
	}
}

// ErrIncompleteSystem is returned when Verify runs with no stages.
var ErrIncompleteSystem = errors.New("core: system has no configured stages")

// Verify runs the cascade over a session with a freshly generated trace
// ID. Stages execute in the paper's order and the first failure rejects;
// all executed stage results are returned for diagnostics.
func (s *System) Verify(session *SessionData) (Decision, error) {
	return s.VerifyTraced(telemetry.NewTraceID(), session)
}

// VerifyTraced runs the cascade under a caller-supplied trace ID (the
// server passes the request's X-Request-ID so decision, response and log
// line all correlate). It is the no-deadline compatibility form of
// VerifyContext: the background context can never cancel, so the call
// behaves exactly like the pre-context cascade at the cost of one nil
// channel test.
func (s *System) VerifyTraced(traceID string, session *SessionData) (Decision, error) {
	//lint:allow ctxfirst seed-compatible entry point; deadline-aware callers use VerifyContext
	return s.VerifyContext(context.Background(), traceID, session)
}

// VerifyContext runs the cascade under a request context and a
// caller-supplied trace ID. Each executed stage is individually timed and
// the decision carries the total pipeline latency — the per-stage
// breakdown behind the paper's §V end-to-end response-time result.
//
// The context bounds the verification: it is checked on entry, again at
// the start of every stage (a speculative stage that has not begun work
// when the deadline passes is abandoned before touching the session),
// and the parallel fan-out itself stops waiting the moment ctx dies.
// On cancellation the returned error wraps ctx.Err() — test it with
// errors.Is(err, context.DeadlineExceeded) — and the Decision carries
// only the trace ID: stages still running have detached and their
// results are unreadable by construction. The root span records an
// "outcome" = "deadline_exceeded" attribute so abandoned attempts are
// distinguishable in the flight recorder.
func (s *System) VerifyContext(ctx context.Context, traceID string, session *SessionData) (Decision, error) {
	if ctx == nil {
		//lint:allow ctxfirst a nil context means "no deadline", the documented compatibility behavior
		ctx = context.Background()
	}
	// The trace ID is assigned before validation so even an errored
	// attempt returns a Decision that correlates with the request's logs
	// and metrics exemplars.
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	if err := session.Validate(); err != nil {
		return Decision{TraceID: traceID}, err
	}
	if s.Distance == nil && s.Field == nil && s.Speaker == nil && s.Identity == nil {
		return Decision{TraceID: traceID}, ErrIncompleteSystem
	}
	if err := ctx.Err(); err != nil {
		return Decision{TraceID: traceID}, fmt.Errorf("core: verification admitted past its deadline: %w", err)
	}
	d := Decision{TraceID: traceID}
	start := time.Now()
	root := s.Tracer.StartTrace(traceID, "verify")
	// The configured stages are independent, read-only checks over
	// distinct session channels (Validate guarantees every channel is
	// present), so they run speculatively in parallel: the cheap sensor
	// checks overlap the expensive ASV scoring instead of serializing in
	// front of it. Each stage stamps its own Elapsed via TimeStage
	// (enforced by the stageinstrument analyzer) and, when tracing, runs
	// under its own "stage:<name>" span carrying its decision evidence.
	// The decision is then assembled in the paper's stage order and
	// truncated at the first failure, so its contents are
	// indistinguishable from the serial cascade — a later stage's
	// speculative result is simply discarded when an earlier stage
	// rejects.
	var abandoned atomic.Bool
	runStage := func(st Stage, verify func(sp *telemetry.Span) StageResult) StageResult {
		// The per-stage deadline check: a stage whose context is already
		// dead is abandoned before it does any work. With the speculative
		// fan-out this is the "between stages" check of a serial cascade —
		// it runs at every stage's admission point.
		if err := ctx.Err(); err != nil {
			abandoned.Store(true)
			return StageResult{Stage: st, Detail: "abandoned: " + err.Error()}
		}
		if s.StageHook != nil {
			s.StageHook(ctx, st)
		}
		sp := root.StartSpan(telemetry.StageSpanName + st.MetricName())
		res := verify(sp)
		endStageSpan(sp, res)
		return res
	}
	var verifies []func() StageResult
	if s.Distance != nil {
		verifies = append(verifies, func() StageResult {
			return runStage(StageDistance, func(sp *telemetry.Span) StageResult {
				return s.Distance.VerifySpan(sp, session.Gesture)
			})
		})
	}
	if s.Field != nil {
		verifies = append(verifies, func() StageResult {
			return runStage(StageSoundField, func(sp *telemetry.Span) StageResult {
				return s.Field.VerifySpan(sp, session.Field)
			})
		})
	}
	if s.Speaker != nil {
		verifies = append(verifies, func() StageResult {
			return runStage(StageLoudspeaker, func(sp *telemetry.Span) StageResult {
				return s.Speaker.VerifySpan(sp, session.Gesture.Mag)
			})
		})
	}
	if s.Identity != nil {
		verifies = append(verifies, func() StageResult {
			return runStage(StageSpeakerID, func(sp *telemetry.Span) StageResult {
				return s.Identity.VerifySpan(sp, session.ClaimedUser, session.Voice)
			})
		})
	}
	results := make([]StageResult, len(verifies))
	tasks := make([]func(), len(verifies))
	for i, verify := range verifies {
		tasks[i] = func() { results[i] = verify() }
	}
	expired := func(cause error) (Decision, error) {
		d.Elapsed = time.Since(start)
		root.SetString("outcome", "deadline_exceeded")
		s.Tracer.Finish(root, telemetry.Verdict{Accepted: false, Elapsed: d.Elapsed})
		return d, fmt.Errorf("core: verification abandoned after %v: %w", d.Elapsed, cause)
	}
	if err := parallel.DoContext(ctx, tasks...); err != nil {
		// The fan-out was abandoned mid-flight: unfinished stages keep
		// running detached and own their result slots, so the decision
		// carries only the trace ID and the elapsed time — reading the
		// results here would race with the detached writers.
		return expired(err)
	}
	if abandoned.Load() {
		// Every task finished (the results are safe to read), but the
		// context died during the fan-out and at least one stage was
		// abandoned at its admission check. Its zero verdict is a timeout
		// artifact, not evidence — surface the deadline, never a
		// fabricated biometric rejection.
		return expired(ctx.Err())
	}
	d.Accepted = true
	for _, r := range results {
		d.Stages = append(d.Stages, r)
		if !r.Pass {
			d.FailedStage = r.Stage
			d.Accepted = false
			break
		}
	}
	d.Elapsed = time.Since(start)
	verdict := telemetry.Verdict{Accepted: d.Accepted, Elapsed: d.Elapsed}
	if !d.Accepted {
		verdict.FailedStage = d.FailedStage.MetricName()
	}
	s.Tracer.Finish(root, verdict)
	return d, nil
}

// endStageSpan stamps a stage's outcome onto its span and ends it.
func endStageSpan(sp *telemetry.Span, res StageResult) {
	sp.SetBool("pass", res.Pass)
	sp.SetFloat("score", res.Score, "")
	sp.SetString("detail", res.Detail)
	sp.End()
}
