package core

import (
	"errors"
	"fmt"
	"time"

	"voiceguard/internal/sensors"
	"voiceguard/internal/telemetry"
)

// System is the assembled VoiceGuard pipeline.
type System struct {
	// Distance is stage 1.
	Distance *DistanceVerifier
	// Field is stage 2.
	Field *SoundFieldVerifier
	// Speaker is stage 3 (loudspeaker detection).
	Speaker *LoudspeakerDetector
	// Identity is stage 4.
	Identity *SpeakerVerifier
}

// SystemConfig assembles a System with defaults.
type SystemConfig struct {
	// FieldSeed seeds the sound-field verifier's training sweeps.
	FieldSeed int64
	// ASV configures the identity back-end.
	ASV SpeakerVerifierConfig
	// DisableDistance, DisableField and DisableMagnetic drop individual
	// stages — used by the ablation benchmarks, not production.
	DisableDistance, DisableField, DisableMagnetic bool
}

// BuildSystem assembles the machine-attack stages (1–3). The ASV stage is
// attached separately with AttachIdentity because many experiments run
// without it (the paper's §VI evaluates the anti-spoofing subsystem in
// isolation, Spear handling human impostors).
func BuildSystem(cfg SystemConfig) (*System, error) {
	s := &System{}
	if !cfg.DisableDistance {
		s.Distance = NewDistanceVerifier()
	}
	if !cfg.DisableField {
		mouth, machine, err := DefaultSoundFieldTraining(cfg.FieldSeed)
		if err != nil {
			return nil, fmt.Errorf("core: generating sound-field training data: %w", err)
		}
		fv, err := TrainSoundFieldVerifier(mouth, machine, cfg.FieldSeed)
		if err != nil {
			return nil, err
		}
		s.Field = fv
	}
	if !cfg.DisableMagnetic {
		s.Speaker = NewLoudspeakerDetector()
	}
	return s, nil
}

// AttachIdentity plugs in a trained ASV back-end as stage 4.
func (s *System) AttachIdentity(v *SpeakerVerifier) { s.Identity = v }

// CalibrateEnvironment applies §VII adaptive thresholding from an ambient
// magnetometer recording.
func (s *System) CalibrateEnvironment(ambient *sensors.Trace) {
	if s.Speaker != nil {
		s.Speaker.Calibrate(ambient)
	}
}

// ErrIncompleteSystem is returned when Verify runs with no stages.
var ErrIncompleteSystem = errors.New("core: system has no configured stages")

// Verify runs the cascade over a session with a freshly generated trace
// ID. Stages execute in the paper's order and the first failure rejects;
// all executed stage results are returned for diagnostics.
func (s *System) Verify(session *SessionData) (Decision, error) {
	return s.VerifyTraced(telemetry.NewTraceID(), session)
}

// VerifyTraced runs the cascade under a caller-supplied trace ID (the
// server passes the request's X-Request-ID so decision, response and log
// line all correlate). Each executed stage is individually timed and the
// decision carries the total pipeline latency — the per-stage breakdown
// behind the paper's §V end-to-end response-time result.
func (s *System) VerifyTraced(traceID string, session *SessionData) (Decision, error) {
	if err := session.Validate(); err != nil {
		return Decision{}, err
	}
	if s.Distance == nil && s.Field == nil && s.Speaker == nil && s.Identity == nil {
		return Decision{}, ErrIncompleteSystem
	}
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	d := Decision{TraceID: traceID}
	start := time.Now()
	run := func(verify func() StageResult) bool {
		// Each stage stamps its own Elapsed via TimeStage (enforced by
		// the stageinstrument analyzer).
		r := verify()
		d.Stages = append(d.Stages, r)
		if !r.Pass {
			d.FailedStage = r.Stage
			return false
		}
		return true
	}
	done := func() (Decision, error) {
		d.Elapsed = time.Since(start)
		return d, nil
	}
	if s.Distance != nil && !run(func() StageResult { return s.Distance.Verify(session.Gesture) }) {
		return done()
	}
	if s.Field != nil && !run(func() StageResult { return s.Field.Verify(session.Field) }) {
		return done()
	}
	if s.Speaker != nil && !run(func() StageResult { return s.Speaker.Verify(session.Gesture.Mag) }) {
		return done()
	}
	if s.Identity != nil && !run(func() StageResult { return s.Identity.Verify(session.ClaimedUser, session.Voice) }) {
		return done()
	}
	d.Accepted = true
	return done()
}
