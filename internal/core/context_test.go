package core

// Deadline tests: VerifyContext must bound the cascade by its request
// context — abandoning speculative stages, never converting a timeout
// into a biometric verdict, and staying byte-for-byte compatible with
// VerifyTraced when the context cannot cancel.

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
)

// hungSystem returns a distance-only system whose single stage hangs in
// the StageHook until test cleanup — a genuinely stuck back-end, not one
// that conveniently recovers at the deadline. started reports each hook
// entry; the hung goroutine detaches at the deadline and is released when
// the test ends.
func hungSystem(t *testing.T, seed int64) (*System, chan struct{}) {
	t.Helper()
	sys, err := BuildSystem(SystemConfig{FieldSeed: seed, DisableField: true, DisableMagnetic: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	sys.StageHook = func(ctx context.Context, st Stage) {
		started <- struct{}{}
		<-release
	}
	return sys, started
}

func TestVerifyContextNilAndBackgroundMatchVerifyTraced(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 21, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(21)))
	session := genuineSessionFor(t, victim, "135792", 21)

	want, err := sys.VerifyTraced("req-ctx-1", session)
	if err != nil {
		t.Fatal(err)
	}
	for name, ctx := range map[string]context.Context{
		"nil": nil, "background": context.Background(),
	} {
		got, err := sys.VerifyContext(ctx, "req-ctx-1", session)
		if err != nil {
			t.Fatalf("%s: VerifyContext: %v", name, err)
		}
		if got.Accepted != want.Accepted || got.FailedStage != want.FailedStage ||
			len(got.Stages) != len(want.Stages) {
			t.Errorf("%s: decision %+v diverges from VerifyTraced %+v", name, got, want)
		}
	}
}

func TestVerifyContextPreExpiredReturnsDeadlineError(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 22, DisableField: true, DisableMagnetic: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(22)))
	session := genuineSessionFor(t, victim, "135792", 22)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := sys.VerifyContext(ctx, "req-expired", session)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if d.TraceID != "req-expired" {
		t.Errorf("TraceID = %q; even abandoned attempts must correlate", d.TraceID)
	}
	if d.Accepted || len(d.Stages) != 0 {
		t.Errorf("pre-expired verify fabricated a decision: %+v", d)
	}
}

func TestVerifyContextDeadlineAbandonsHungStage(t *testing.T) {
	sys, started := hungSystem(t, 23)
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(23)))
	session := genuineSessionFor(t, victim, "135792", 23)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	d, err := sys.VerifyContext(ctx, "req-hung", session)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if waited := time.Since(begin); waited > 5*time.Second {
		t.Fatalf("verify held the caller %v past a 50ms deadline", waited)
	}
	if d.Accepted {
		t.Error("abandoned verify reported ACCEPT")
	}
	if d.TraceID != "req-hung" {
		t.Errorf("TraceID = %q", d.TraceID)
	}
	select {
	case <-started:
	default:
		t.Error("stage hook never entered; the test exercised nothing")
	}
}

// TestVerifyContextDeadlineRecordsSpanAttr pins the observability
// contract: an abandoned attempt lands in the flight recorder as a
// non-accepted trace whose root span carries outcome=deadline_exceeded.
func TestVerifyContextDeadlineRecordsSpanAttr(t *testing.T) {
	sys, _ := hungSystem(t, 24)
	rec := telemetry.NewFlightRecorder(4)
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: rec})
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(24)))
	session := genuineSessionFor(t, victim, "135792", 24)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := sys.VerifyContext(ctx, "req-span", session); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	tr := rec.Find("req-span")
	if tr == nil {
		t.Fatal("abandoned attempt not recorded in the flight recorder")
	}
	if tr.Accepted {
		t.Error("abandoned trace marked accepted")
	}
	var root *telemetry.SpanRecord
	for i := range tr.Spans {
		if tr.Spans[i].ParentID == "" {
			root = &tr.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("no root span in recorded trace")
	}
	attr, ok := root.Attr("outcome")
	if !ok || attr.Str != "deadline_exceeded" {
		t.Errorf("root outcome attr = %+v, want deadline_exceeded", attr)
	}
}

// TestVerifyContextAbandonedStageNeverRejects drives the race where the
// context dies while the fan-out is admitting stages: whichever interleaving
// occurs, the caller sees a deadline error, never a fabricated REJECT.
func TestVerifyContextAbandonedStageNeverRejects(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 25, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(25)))
	session := genuineSessionFor(t, victim, "135792", 25)
	// The hook cancels the context from inside the first admitted stage,
	// so the remaining speculative stages hit a dead context at their
	// admission checks while the fan-out itself still completes.
	var cancel context.CancelFunc
	sys.StageHook = func(ctx context.Context, st Stage) { cancel() }
	for i := 0; i < 10; i++ {
		var ctx context.Context
		ctx, cancel = context.WithCancel(context.Background())
		d, err := sys.VerifyContext(ctx, "req-race", session)
		cancel()
		switch {
		case err == nil:
			// The fan-out won the race: every stage genuinely ran, so the
			// only honest verdict for a genuine session is ACCEPT.
			if !d.Accepted {
				t.Fatalf("iteration %d: abandonment surfaced as REJECT: %+v", i, d)
			}
		case !errors.Is(err, context.Canceled):
			t.Fatalf("iteration %d: err = %v, want nil or wrapped context.Canceled", i, err)
		}
	}
}
