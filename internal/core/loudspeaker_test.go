package core

import (
	"math"
	"testing"

	"voiceguard/internal/device"
	"voiceguard/internal/geometry"
	"voiceguard/internal/magnetics"
	"voiceguard/internal/sensors"
	"voiceguard/internal/trajectory"
)

// gestureWithScene simulates the standard gesture in a magnetic scene.
func gestureWithScene(t *testing.T, scene magnetics.FieldSource, dist float64, seed int64) *trajectory.Gesture {
	t.Helper()
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(dist),
		Scene:   scene,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sceneWithSpeaker(spk device.Loudspeaker, env magnetics.EnvironmentKind, seed int64) *magnetics.Scene {
	scene := magnetics.NewEnvironment(env, seed)
	drive := func(t float64) float64 { return math.Sin(2 * math.Pi * 300 * t) }
	for _, src := range spk.FieldSources(geometry.Vec3{}, drive) {
		scene.Add(src)
	}
	return scene
}

func TestLoudspeakerDetectorCleanPass(t *testing.T) {
	d := NewLoudspeakerDetector()
	g := gestureWithScene(t, magnetics.NewEnvironment(magnetics.EnvQuiet, 1), 0.06, 1)
	res := d.Verify(g.Mag)
	if !res.Pass {
		t.Errorf("quiet genuine gesture flagged: %s", res.Detail)
	}
}

func TestLoudspeakerDetectorCatchesSpeakerAt6cm(t *testing.T) {
	d := NewLoudspeakerDetector()
	for i, spk := range device.Catalog() {
		if spk.Class == device.ClassEarphone {
			continue // earphones are stage-2's job
		}
		g := gestureWithScene(t, sceneWithSpeaker(spk, magnetics.EnvQuiet, int64(i)), 0.06, int64(i))
		res := d.Verify(g.Mag)
		if res.Pass {
			t.Errorf("%s %s undetected at 6 cm: %s", spk.Maker, spk.Model, res.Detail)
		}
	}
}

func TestLoudspeakerDetectorMissesSpeakerFar(t *testing.T) {
	// At 14 cm a small phone-speaker magnet falls under the thresholds —
	// exactly the FAR growth of Fig. 12(a).
	d := NewLoudspeakerDetector()
	small := device.Catalog()[19] // iPhone 5S internal
	g := gestureWithScene(t, sceneWithSpeaker(small, magnetics.EnvQuiet, 7), 0.14, 7)
	res := d.Verify(g.Mag)
	if !res.Pass {
		t.Logf("small speaker still detected at 14 cm (%s) — acceptable but unexpected", res.Detail)
	}
}

func TestLoudspeakerDetectorEmptyTrace(t *testing.T) {
	d := NewLoudspeakerDetector()
	if d.Verify(nil).Pass {
		t.Error("nil trace must not pass")
	}
	if d.Verify(&sensors.Trace{}).Pass {
		t.Error("empty trace must not pass")
	}
}

func TestMeasureMetrics(t *testing.T) {
	tr := &sensors.Trace{Samples: []sensors.Sample{
		{T: 0.00, V: geometry.Vec3{X: 50}},
		{T: 0.01, V: geometry.Vec3{X: 50}},
		{T: 0.02, V: geometry.Vec3{X: 50}},
		{T: 0.03, V: geometry.Vec3{X: 80}},
		{T: 0.04, V: geometry.Vec3{X: 80}},
		{T: 0.05, V: geometry.Vec3{X: 80}},
	}}
	m := Measure(tr)
	// Smoothed swing is slightly under the raw 30 µT step.
	if m.Swing < 25 || m.Swing > 30 {
		t.Errorf("swing = %v", m.Swing)
	}
	if m.MaxRate <= 0 {
		t.Errorf("rate = %v", m.MaxRate)
	}
	if got := Measure(&sensors.Trace{}); got.Swing != 0 || got.MaxRate != 0 {
		t.Error("empty trace metrics should be zero")
	}
}

func TestCalibrateRaisesThresholdsInCar(t *testing.T) {
	quiet := NewLoudspeakerDetector()
	car := NewLoudspeakerDetector()

	// Ambient recording: phone held still in the car for 2 s.
	carScene := magnetics.NewEnvironment(magnetics.EnvCar, 11)
	rng := newTestRand(11)
	magSensor := sensors.New(sensors.AK8975(), rng)
	ambient, err := magSensor.Record(2, func(tt float64) geometry.Vec3 {
		return carScene.FieldAt(geometry.Vec3{X: 0.02, Y: 0.01}, tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	car.Calibrate(ambient)
	if car.Mt <= quiet.Mt && car.Bt <= quiet.Bt {
		t.Errorf("car calibration did not raise thresholds: Mt %v→%v Bt %v→%v",
			quiet.Mt, car.Mt, quiet.Bt, car.Bt)
	}
	// Calibration against a quiet room keeps the defaults.
	fresh := NewLoudspeakerDetector()
	quietScene := magnetics.NewEnvironment(magnetics.EnvQuiet, 12)
	ambientQuiet, err := magSensor.Record(2, func(tt float64) geometry.Vec3 {
		return quietScene.FieldAt(geometry.Vec3{X: 0.02, Y: 0.01}, tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Calibrate(ambientQuiet)
	if fresh.Mt > 2*quiet.Mt {
		t.Errorf("quiet calibration inflated Mt to %v", fresh.Mt)
	}
	// Nil ambient is a no-op.
	d := NewLoudspeakerDetector()
	d.Calibrate(nil)
	if d.Mt != quiet.Mt {
		t.Error("nil calibration changed thresholds")
	}
}

func TestCalibratedCarDetectorStillCatchesSpeakers(t *testing.T) {
	// The §VII trade-off: after car calibration, a speaker at 6 cm must
	// still be detected (its swing is far larger than car EMF).
	d := NewLoudspeakerDetector()
	carScene := magnetics.NewEnvironment(magnetics.EnvCar, 13)
	rng := newTestRand(13)
	magSensor := sensors.New(sensors.AK8975(), rng)
	ambient, err := magSensor.Record(2, func(tt float64) geometry.Vec3 {
		return carScene.FieldAt(geometry.Vec3{X: 0.02, Y: 0.01}, tt)
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Calibrate(ambient)
	spk := device.Catalog()[0]
	g := gestureWithScene(t, sceneWithSpeaker(spk, magnetics.EnvCar, 13), 0.05, 13)
	if res := d.Verify(g.Mag); res.Pass {
		t.Errorf("calibrated detector missed %s at 5 cm: %s", spk.Model, res.Detail)
	}
}
