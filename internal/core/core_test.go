package core

import (
	"math/rand"
	"strings"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

func TestSessionValidate(t *testing.T) {
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(0.06), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	field := []soundfield.Measurement{{AngleDeg: 0, FreqHz: 1500, LevelDB: 60}}
	voice := &audio.Signal{Samples: make([]float64, 100), Rate: 16000}
	good := &SessionData{ClaimedUser: "u", Gesture: g, Field: field, Voice: voice}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}
	cases := []*SessionData{
		nil,
		{Gesture: g, Field: field, Voice: voice},
		{ClaimedUser: "u", Field: field, Voice: voice},
		{ClaimedUser: "u", Gesture: g, Voice: voice},
		{ClaimedUser: "u", Gesture: g, Field: field},
		{ClaimedUser: "u", Gesture: g, Field: field, Voice: &audio.Signal{Rate: 16000}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestStageString(t *testing.T) {
	for s := StageDistance; s <= StageSpeakerID; s++ {
		if s.String() == "unknown" {
			t.Errorf("stage %d unlabeled", s)
		}
	}
	if Stage(0).String() != "unknown" {
		t.Error("zero stage should be unknown")
	}
	d := Decision{Accepted: true}
	if d.String() != "ACCEPT" {
		t.Errorf("decision = %q", d.String())
	}
	r := Decision{FailedStage: StageLoudspeaker}
	if !strings.Contains(r.String(), "loudspeaker") {
		t.Errorf("decision = %q", r.String())
	}
}

func TestDistanceVerifierAcceptsClose(t *testing.T) {
	v := NewDistanceVerifier()
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(0.05), Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify(g)
	if !res.Pass {
		t.Errorf("close gesture rejected: %s", res.Detail)
	}
	if res.Stage != StageDistance {
		t.Error("wrong stage tag")
	}
}

func TestDistanceVerifierRejectsFar(t *testing.T) {
	v := NewDistanceVerifier()
	// 12 cm is twice the Dt gate.
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(0.12), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify(g)
	if res.Pass {
		t.Error("far gesture accepted")
	}
	if !strings.Contains(res.Detail, "exceeds Dt") {
		t.Errorf("detail = %q", res.Detail)
	}
}

func TestDistanceVerifierRejectsMotionless(t *testing.T) {
	v := NewDistanceVerifier()
	u := trajectory.StandardUseCase(0.05)
	u.SweepHalfAngle = 0.02 // barely moves
	g, err := trajectory.SimulateGesture(trajectory.GestureConfig{UseCase: u, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := v.Verify(g)
	if res.Pass {
		t.Error("motionless gesture accepted")
	}
}

func TestSoundFieldVerifier(t *testing.T) {
	mouth, machine, err := DefaultSoundFieldTraining(5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := TrainSoundFieldVerifier(mouth, machine, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	// Fresh mouth sweeps accepted.
	var mouthPass, earReject, coneReject int
	const n = 20
	for i := 0; i < n; i++ {
		ms, err := soundfield.Sweep(soundfield.Mouth(), soundfield.DefaultSweep(0.06), rng)
		if err != nil {
			t.Fatal(err)
		}
		if v.Verify(ms).Pass {
			mouthPass++
		}
		es, err := soundfield.Sweep(soundfield.Earphone(), soundfield.DefaultSweep(0.06), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Verify(es).Pass {
			earReject++
		}
		cs, err := soundfield.Sweep(soundfield.ConeSpeaker("x", 0.04), soundfield.DefaultSweep(0.06), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Verify(cs).Pass {
			coneReject++
		}
	}
	if mouthPass < n-1 {
		t.Errorf("mouth pass rate %d/%d", mouthPass, n)
	}
	if earReject < n-1 {
		t.Errorf("earphone reject rate %d/%d", earReject, n)
	}
	if coneReject < n-1 {
		t.Errorf("cone reject rate %d/%d", coneReject, n)
	}
}

func TestSoundFieldVerifierErrors(t *testing.T) {
	if _, err := TrainSoundFieldVerifier(nil, nil, 1); err == nil {
		t.Error("empty training accepted")
	}
	var v *SoundFieldVerifier
	if v.Verify(nil).Pass {
		t.Error("nil verifier must not pass")
	}
	trained := &SoundFieldVerifier{}
	if trained.Verify([]soundfield.Measurement{{LevelDB: 1}}).Pass {
		t.Error("untrained verifier must not pass")
	}
}
