package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"voiceguard/internal/audio"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/speech"
)

func TestSpeakerVerifierSaveLoadGMM(t *testing.T) {
	bg := buildBackground(t, 4, 300)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{Components: 8, Seed: 300})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(301))
	victim := speech.RandomProfile("victim", rng)
	enroll := renderUtterances(t, victim, "112233", 3, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll}); err != nil {
		t.Fatal(err)
	}
	v.Threshold = 0.42

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpeakerVerifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold != 0.42 || loaded.Backend() != BackendGMMUBM {
		t.Errorf("metadata lost: threshold %v backend %v", loaded.Threshold, loaded.Backend())
	}
	// Scores identical across the round trip.
	test := renderUtterances(t, victim, "112233", 1, rng)[0]
	a, err := v.Score("victim", test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Score("victim", test)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("score mismatch: %v vs %v", a, b)
	}
}

func TestSpeakerVerifierSaveLoadISV(t *testing.T) {
	bg := buildBackground(t, 5, 310)
	v, err := TrainSpeakerVerifier(bg, SpeakerVerifierConfig{
		Backend: BackendISV, Components: 8, ISVRank: 3, Seed: 310,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(311))
	victim := speech.RandomProfile("victim", rng)
	enroll := renderUtterances(t, victim, "445566", 4, rng)
	if err := v.Enroll("victim", [][]*audio.Signal{enroll[:2], enroll[2:]}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpeakerVerifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	test := renderUtterances(t, victim, "445566", 1, rng)[0]
	a, err := v.Score("victim", test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Score("victim", test)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("ISV score mismatch: %v vs %v", a, b)
	}
}

func TestLoadSpeakerVerifierRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"not json":      "garbage",
		"wrong version": `{"version":9}`,
		"bad backend":   `{"version":1,"backend":7,"relevance":4,"ubm":{}}`,
		"bad relevance": `{"version":1,"backend":1,"relevance":0,"ubm":{}}`,
		"bad ubm":       `{"version":1,"backend":1,"relevance":4,"ubm":{"version":1,"weights":[],"means":[],"vars":[]}}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadSpeakerVerifier(strings.NewReader(payload)); err == nil {
				t.Error("corrupt verifier accepted")
			}
		})
	}
}

func TestSoundFieldVerifierSaveLoad(t *testing.T) {
	mouth, machine, err := DefaultSoundFieldTraining(320)
	if err != nil {
		t.Fatal(err)
	}
	v, err := TrainSoundFieldVerifier(mouth, machine, 320)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSoundFieldVerifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))
	ms, err := soundfield.Sweep(soundfield.Mouth(), soundfield.DefaultSweep(0.06), rng)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := v.Verify(ms).Score, loaded.Verify(ms).Score; a != b {
		t.Errorf("margin mismatch: %v vs %v", a, b)
	}
}

func TestLoadSoundFieldVerifierRejectsCorrupt(t *testing.T) {
	for name, payload := range map[string]string{
		"not json":      "nope",
		"wrong version": `{"version":5,"models":{}}`,
		"empty":         `{"version":1,"models":{}}`,
		"bad model":     `{"version":1,"models":{"49":{"version":1,"weights":[],"bias":0,"mean":[],"std":[]}}}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadSoundFieldVerifier(strings.NewReader(payload)); err == nil {
				t.Error("corrupt verifier accepted")
			}
		})
	}
}
