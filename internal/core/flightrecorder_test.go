package core

// Flight-recorder integration: a rejected verification must leave behind
// a span tree deep enough to replay the decision — request root, the
// failing stage, and the stage's sub-operations — with the stage's
// numeric evidence and the live threshold it violated attached as typed
// attributes. This is the forensic contract behind /debug/trace/{id}.

import (
	"math/rand"
	"testing"

	"voiceguard/internal/speech"
	"voiceguard/internal/telemetry"
	"voiceguard/internal/trajectory"
)

// traceDepth returns the number of levels in the record's span tree.
func traceDepth(rec *telemetry.TraceRecord) int {
	parent := make(map[string]string, len(rec.Spans))
	for _, sp := range rec.Spans {
		parent[sp.SpanID] = sp.ParentID
	}
	max := 0
	for _, sp := range rec.Spans {
		d, id := 0, sp.SpanID
		for id != "" {
			d++
			id = parent[id]
		}
		if d > max {
			max = d
		}
	}
	return max
}

func TestRejectedVerifyTraceCarriesEvidenceAndDepth(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 41})
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewFlightRecorder(8)
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: rec})

	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(41)))
	session := genuineSessionFor(t, victim, "135792", 41)
	// Swap in a gesture performed at 12 cm — twice the Dt gate — so the
	// distance stage rejects on real numeric evidence.
	far, err := trajectory.SimulateGesture(trajectory.GestureConfig{
		UseCase: trajectory.StandardUseCase(0.12), Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	session.Gesture = far

	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepted || d.FailedStage != StageDistance {
		t.Fatalf("decision = %+v, want a distance rejection", d)
	}

	tr := rec.Find(d.TraceID)
	if tr == nil {
		t.Fatalf("trace %s not retained by the flight recorder", d.TraceID)
	}
	if tr.Accepted || tr.FailedStage != StageDistance.MetricName() {
		t.Fatalf("trace verdict = accepted=%t failed=%q", tr.Accepted, tr.FailedStage)
	}
	if depth := traceDepth(tr); depth < 3 {
		t.Fatalf("span tree depth = %d, want ≥ 3 (root → stage → sub-operation)", depth)
	}

	sp, ok := tr.StageSpan(StageDistance.MetricName())
	if !ok {
		t.Fatal("no stage:distance span in the trace")
	}
	dist, ok := sp.Attr("distance_cm")
	if !ok {
		t.Fatal("failing stage carries no distance_cm evidence")
	}
	gate, ok := sp.Attr("threshold_dt_cm")
	if !ok {
		t.Fatal("failing stage carries no threshold_dt_cm attribute")
	}
	dv, _ := dist.Number()
	gv, _ := gate.Number()
	if !(dv > gv) {
		t.Fatalf("evidence does not show the violation: distance %.2f cm vs Dt %.2f cm", dv, gv)
	}
	if pass, ok := sp.Attr("pass"); !ok || pass.Bool {
		t.Fatalf("stage span pass attr = %+v, %v; want recorded false", pass, ok)
	}

	// The digest /debug/decisions serves must surface the same numbers.
	sum := tr.Summary()
	if sum.Evidence["distance_cm"] != dv || sum.Evidence["threshold_dt_cm"] != gv {
		t.Fatalf("summary evidence = %v", sum.Evidence)
	}
}

func TestVerifyNotSampledLeavesNoTrace(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 42, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewFlightRecorder(8)
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
		Sample:   telemetry.SampleNone(),
		Recorder: rec,
	})
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(42)))
	session := genuineSessionFor(t, victim, "135792", 42)
	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.TraceID == "" {
		t.Fatal("unsampled decision lost its trace ID")
	}
	if got := rec.Snapshot(); len(got) != 0 {
		t.Fatalf("unsampled verification recorded %d traces", len(got))
	}
}
