package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"voiceguard/internal/features"
	"voiceguard/internal/gmm"
	"voiceguard/internal/svm"
)

// Verifier persistence: a deployment trains the ASV back-end and the
// sound-field SVMs once, saves them, and loads them at server startup.

const persistVersion = 1

// speakerVerifierDTO is the serialized form of a SpeakerVerifier.
type speakerVerifierDTO struct {
	Version   int                        `json:"version"`
	Backend   Backend                    `json:"backend"`
	MFCC      features.MFCCConfig        `json:"mfcc"`
	Relevance float64                    `json:"relevance"` // unit: dimensionless
	Threshold float64                    `json:"threshold"` // unit: score
	UBM       json.RawMessage            `json:"ubm"`
	ISV       json.RawMessage            `json:"isv,omitempty"`
	Users     map[string]json.RawMessage `json:"users,omitempty"`
	ISVUsers  map[string][]float64       `json:"isv_users,omitempty"`
}

// Save writes the verifier (back-end models and all enrolled users) to w.
func (v *SpeakerVerifier) Save(w io.Writer) error {
	dto := speakerVerifierDTO{
		Version:   persistVersion,
		Backend:   v.backend,
		MFCC:      v.mfcc,
		Relevance: v.relevance,
		Threshold: v.Threshold,
		Users:     make(map[string]json.RawMessage),
		ISVUsers:  make(map[string][]float64),
	}
	var buf bytes.Buffer
	if err := v.ubm.Save(&buf); err != nil {
		return fmt.Errorf("core: saving verifier UBM: %w", err)
	}
	dto.UBM = append([]byte(nil), buf.Bytes()...)
	if v.isv != nil {
		buf.Reset()
		if err := v.isv.Save(&buf); err != nil {
			return fmt.Errorf("core: saving verifier ISV: %w", err)
		}
		dto.ISV = append([]byte(nil), buf.Bytes()...)
	}
	for name, ver := range v.users {
		buf.Reset()
		if err := ver.Speaker.Save(&buf); err != nil {
			return fmt.Errorf("core: saving speaker model %q: %w", name, err)
		}
		dto.Users[name] = append([]byte(nil), buf.Bytes()...)
	}
	for name, spk := range v.isvUsers {
		dto.ISVUsers[name] = spk.Ref()
	}
	if err := json.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("core: saving verifier: %w", err)
	}
	return nil
}

// LoadSpeakerVerifier reads a verifier written by Save.
func LoadSpeakerVerifier(r io.Reader) (*SpeakerVerifier, error) {
	var dto speakerVerifierDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: loading verifier: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported verifier version %d", dto.Version)
	}
	if dto.Backend != BackendGMMUBM && dto.Backend != BackendISV {
		return nil, fmt.Errorf("core: unknown backend %d", dto.Backend)
	}
	if dto.Relevance <= 0 {
		return nil, fmt.Errorf("core: relevance %v must be positive", dto.Relevance)
	}
	ubm, err := gmm.LoadGMM(bytes.NewReader(dto.UBM))
	if err != nil {
		return nil, fmt.Errorf("core: loading verifier UBM: %w", err)
	}
	v := &SpeakerVerifier{
		backend:   dto.Backend,
		mfcc:      dto.MFCC,
		ubm:       ubm,
		relevance: dto.Relevance,
		Threshold: dto.Threshold,
		users:     make(map[string]*gmm.Verifier),
		isvUsers:  make(map[string]*gmm.ISVSpeaker),
	}
	if len(dto.ISV) > 0 {
		isv, err := gmm.LoadISV(bytes.NewReader(dto.ISV))
		if err != nil {
			return nil, fmt.Errorf("core: loading verifier ISV: %w", err)
		}
		v.isv = isv
	}
	if dto.Backend == BackendISV && v.isv == nil {
		return nil, fmt.Errorf("core: ISV backend without ISV model")
	}
	for name, raw := range dto.Users {
		spk, err := gmm.LoadGMM(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: loading speaker model %q: %w", name, err)
		}
		v.users[name] = &gmm.Verifier{UBM: ubm, Speaker: spk}
	}
	for name, ref := range dto.ISVUsers {
		if v.isv == nil {
			return nil, fmt.Errorf("core: ISV user %q without ISV model", name)
		}
		spk, err := v.isv.SpeakerFromRef(ref)
		if err != nil {
			return nil, fmt.Errorf("core: loading ISV user %q: %w", name, err)
		}
		v.isvUsers[name] = spk
	}
	return v, nil
}

// soundFieldDTO is the serialized form of a SoundFieldVerifier.
type soundFieldDTO struct {
	Version int                     `json:"version"`
	Models  map[int]json.RawMessage `json:"models"`
}

// Save writes the trained band models to w.
func (v *SoundFieldVerifier) Save(w io.Writer) error {
	dto := soundFieldDTO{Version: persistVersion, Models: make(map[int]json.RawMessage)}
	var buf bytes.Buffer
	for k, m := range v.models {
		buf.Reset()
		if err := m.Save(&buf); err != nil {
			return fmt.Errorf("core: saving sound-field band %d: %w", k, err)
		}
		dto.Models[k] = append([]byte(nil), buf.Bytes()...)
	}
	if err := json.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("core: saving sound-field verifier: %w", err)
	}
	return nil
}

// LoadSoundFieldVerifier reads a verifier written by Save.
func LoadSoundFieldVerifier(r io.Reader) (*SoundFieldVerifier, error) {
	var dto soundFieldDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: loading sound-field verifier: %w", err)
	}
	if dto.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported sound-field version %d", dto.Version)
	}
	if len(dto.Models) == 0 {
		return nil, fmt.Errorf("core: sound-field verifier has no band models")
	}
	v := &SoundFieldVerifier{models: make(map[int]*svm.Model, len(dto.Models))}
	for k, raw := range dto.Models {
		m, err := svm.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: loading sound-field band %d: %w", k, err)
		}
		v.models[k] = m
	}
	return v, nil
}
