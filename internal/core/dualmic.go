package core

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/soundfield"
	"voiceguard/internal/svm"
)

// DualMicVerifier implements the §VII dual-microphone extension as an
// alternative stage-2 verifier: the sound level difference between the
// phone's two microphones plus a much shorter sweep replaces the full
// single-mic sweep. See soundfield.DualMicSweep for the physics.
type DualMicVerifier struct {
	model *svm.Model
}

// TrainDualMicVerifier fits the verifier from labeled dual-mic sweeps.
func TrainDualMicVerifier(mouth, machine [][]soundfield.SLDMeasurement, seed int64) (*DualMicVerifier, error) {
	if len(mouth) == 0 || len(machine) == 0 {
		return nil, fmt.Errorf("core: dual-mic training needs both classes (%d mouth, %d machine)",
			len(mouth), len(machine))
	}
	var x [][]float64
	var y []int
	for _, ms := range mouth {
		x = append(x, soundfield.SLDFeatureVector(ms))
		y = append(y, 1)
	}
	for _, ms := range machine {
		x = append(x, soundfield.SLDFeatureVector(ms))
		y = append(y, -1)
	}
	model, err := svm.Train(x, y, svm.TrainConfig{Seed: seed, Lambda: 1e-2})
	if err != nil {
		return nil, fmt.Errorf("core: training dual-mic SVM: %w", err)
	}
	return &DualMicVerifier{model: model}, nil
}

// DefaultDualMicTraining generates the training set at the paper's
// operating distance: mouths vs earphones, cones, tubes and the
// electrostatic panel, all measured through the dual-mic short sweep.
func DefaultDualMicTraining(seed int64) (mouth, machine [][]soundfield.SLDMeasurement, err error) {
	rng := rand.New(rand.NewSource(seed))
	negatives := []soundfield.Source{
		soundfield.Earphone(),
		soundfield.ConeSpeaker("small-cone", 0.02),
		soundfield.ConeSpeaker("pc-cone", 0.04),
		soundfield.ConeSpeaker("large-cone", 0.065),
		soundfield.Electrostatic(),
		&soundfield.Tube{OpeningRadius: 0.012, Length: 0.25, LevelAt1m: 60},
		&soundfield.Tube{OpeningRadius: 0.018, Length: 0.40, LevelAt1m: 60},
	}
	const perNegative = 6
	mouthCount := len(negatives) * perNegative
	for _, d := range []float64{0.05, 0.06, 0.08} {
		cfg := soundfield.DefaultDualMic(d)
		for i := 0; i < mouthCount; i++ {
			ms, err := soundfield.DualMicSweep(soundfield.Mouth(), cfg, rng)
			if err != nil {
				return nil, nil, err
			}
			mouth = append(mouth, ms)
		}
		for _, src := range negatives {
			for i := 0; i < perNegative; i++ {
				ms, err := soundfield.DualMicSweep(src, cfg, rng)
				if err != nil {
					return nil, nil, err
				}
				machine = append(machine, ms)
			}
		}
	}
	return mouth, machine, nil
}

// Verify classifies a dual-mic sweep as stage 2.
func (v *DualMicVerifier) Verify(ms []soundfield.SLDMeasurement) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageSoundField
	if v == nil || v.model == nil {
		res.Detail = "dual-mic verifier not trained"
		return res
	}
	if len(ms) == 0 {
		res.Detail = "no dual-mic measurements"
		return res
	}
	margin := v.model.Margin(soundfield.SLDFeatureVector(ms))
	res.Score = margin
	if margin >= 0 {
		res.Pass = true
		res.Detail = fmt.Sprintf("mouth-like dual-mic field (margin %.2f)", margin)
	} else {
		res.Detail = fmt.Sprintf("machine-like dual-mic field (margin %.2f)", margin)
	}
	return res
}
