// Package core implements VoiceGuard, the paper's contribution: a
// software-only voice-impersonation defense that cascades four verifiers
// (Fig. 4):
//
//  1. sound-source distance verification — the gesture's circle-fitted
//     trajectory must place the phone within Dt of the sound source;
//  2. sound-field verification — an SVM accepts only sources whose
//     spatial sound field matches a human mouth;
//  3. loudspeaker detection — magnetometer magnitude swing and change
//     rate must stay below the Mt/βt thresholds;
//  4. speaker-identity verification — a GMM-UBM (or ISV) ASV back-end
//     must accept the claimed speaker.
//
// Machine-based attacks (replay/morphing/synthesis) terminate in a
// loudspeaker and die at stages 1–3; human imitators die at stage 4.
package core

import (
	"errors"
	"fmt"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

// SessionData is everything one verification attempt uploads: the motion
// gesture (inertial + magnetic + acoustic ranging), the sound-field sweep
// measurements, and the spoken passphrase.
type SessionData struct {
	// ClaimedUser is the identity being asserted.
	ClaimedUser string
	// Gesture is the recorded motion/sensing of the attempt.
	Gesture *trajectory.Gesture
	// Field is the sound-field sweep of the attempt.
	Field []soundfield.Measurement
	// Voice is the spoken passphrase audio.
	Voice *audio.Signal
}

// Validate reports whether the session carries all required channels.
func (s *SessionData) Validate() error {
	switch {
	case s == nil:
		return errors.New("core: nil session")
	case s.ClaimedUser == "":
		return errors.New("core: missing claimed user")
	case s.Gesture == nil:
		return errors.New("core: missing gesture data")
	case len(s.Field) == 0:
		return errors.New("core: missing sound-field measurements")
	case s.Voice == nil || s.Voice.Len() == 0:
		return errors.New("core: missing voice audio")
	}
	return nil
}

// Stage identifies a pipeline component.
type Stage int

// Pipeline stages in cascade order.
const (
	StageDistance Stage = iota + 1
	StageSoundField
	StageLoudspeaker
	StageSpeakerID
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageDistance:
		return "distance-verification"
	case StageSoundField:
		return "sound-field-verification"
	case StageLoudspeaker:
		return "loudspeaker-detection"
	case StageSpeakerID:
		return "speaker-identity-verification"
	default:
		return "unknown"
	}
}

// MetricName is the short series label used for the stage in telemetry
// (histogram label values, log fields); String() stays the long
// human-readable form used in wire responses and details.
func (s Stage) MetricName() string {
	switch s {
	case StageDistance:
		return "distance"
	case StageSoundField:
		return "soundfield"
	case StageLoudspeaker:
		return "loudspeaker"
	case StageSpeakerID:
		return "identity"
	default:
		return "unknown"
	}
}

// EvidenceValue is one named statistic a stage measured while deciding
// (field_ut, distance_cm, svm_margin, llr, ...). Stages expose their raw
// evidence through StageResult so the observability layer can aggregate
// score distributions over time without re-parsing span attributes.
type EvidenceValue struct {
	// Metric names the statistic; matches the span attribute name and
	// the EvidenceSeriesDefs entry. Empty marks an unused slot.
	Metric string
	// Value is the measured statistic (unit varies by metric).
	Value float64 // unit: any
}

// maxStageEvidence bounds the inline evidence array: no stage records
// more than two window-tracked statistics, and keeping the array inline
// keeps StageResult allocation-free on the hot path.
const maxStageEvidence = 2

// StageResult is one component's verdict.
type StageResult struct {
	// Stage identifies the component.
	Stage Stage
	// Pass reports whether the component accepted the session.
	Pass bool
	// Score is the component's continuous statistic (meaning varies by
	// stage; higher is always "more genuine").
	Score float64 // unit: any
	// Detail is a human-readable explanation.
	Detail string
	// Elapsed is the stage's processing time for this session.
	Elapsed time.Duration
	// CPU is the stage's thread CPU time, recorded only when
	// SetResourceAttribution(true) is in effect (else zero).
	CPU time.Duration
	// Evidence carries the stage's raw measured statistics (unused slots
	// have an empty Metric).
	Evidence [maxStageEvidence]EvidenceValue
}

// TimeStage returns a function that stamps res.Elapsed with the time
// since TimeStage was called. Every stage-verify implementation defers it
// over a named result:
//
//	func (v *MyVerifier) Verify(...) (res StageResult) {
//		defer TimeStage(&res)()
//		...
//	}
//
// so the per-stage latency breakdown (the paper's §V response-time
// result, exported through the telemetry histograms) is recorded even
// when a stage is invoked outside the System cascade. The
// stageinstrument analyzer in voiceguard-lint enforces this.
//
// With SetResourceAttribution(true) the returned closure additionally
// stamps res.CPU with the stage's thread CPU time (goroutine pinned for
// the stage's duration); the default path is unchanged.
func TimeStage(res *StageResult) func() {
	if resourceAttribution.Load() {
		return timeStageResources(res)
	}
	start := time.Now()
	return func() { res.Elapsed = time.Since(start) }
}

// Decision is the pipeline outcome for one session.
type Decision struct {
	// Accepted is the final verdict.
	Accepted bool
	// FailedStage is the first failing stage (0 when accepted).
	FailedStage Stage
	// Stages holds every executed component result in order.
	Stages []StageResult
	// TraceID correlates this decision with the request that produced it
	// (X-Request-ID on the wire, the trace_id log field server-side).
	TraceID string
	// Elapsed is the total pipeline latency across all executed stages.
	Elapsed time.Duration
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if d.Accepted {
		return "ACCEPT"
	}
	return fmt.Sprintf("REJECT at %v", d.FailedStage)
}
