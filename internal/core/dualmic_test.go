package core

import (
	"math/rand"
	"testing"

	"voiceguard/internal/soundfield"
)

func trainedDualMic(t *testing.T, seed int64) *DualMicVerifier {
	t.Helper()
	mouth, machine, err := DefaultDualMicTraining(seed)
	if err != nil {
		t.Fatal(err)
	}
	v, err := TrainDualMicVerifier(mouth, machine, seed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDualMicVerifierSeparates(t *testing.T) {
	v := trainedDualMic(t, 1)
	rng := rand.New(rand.NewSource(50))
	cfg := soundfield.DefaultDualMic(0.06)
	const n = 30
	var mouthPass, machineReject int
	for i := 0; i < n; i++ {
		ms, err := soundfield.DualMicSweep(soundfield.Mouth(), cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v.Verify(ms).Pass {
			mouthPass++
		}
		for _, src := range []soundfield.Source{
			soundfield.Earphone(),
			soundfield.ConeSpeaker("pc", 0.04),
		} {
			es, err := soundfield.DualMicSweep(src, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Verify(es).Pass {
				machineReject++
			}
		}
	}
	if mouthPass < n-1 {
		t.Errorf("mouth pass %d/%d", mouthPass, n)
	}
	// The halved sweep shows less head-shadow structure, so the dual-mic
	// variant trades a little machine-rejection power for gesture
	// brevity (it is the paper's future-work proposal, not its primary
	// defense): require ≥93% rejection rather than near-perfection.
	if machineReject < 2*n-4 {
		t.Errorf("machine reject %d/%d", machineReject, 2*n)
	}
}

func TestDualMicShorterSweepThanSingleMic(t *testing.T) {
	// The §VII claim: the dual-mic configuration needs half the sweep.
	single := soundfield.DefaultSweep(0.06)
	dual := soundfield.DefaultDualMic(0.06)
	if dual.HalfAngleDeg >= single.HalfAngleDeg {
		t.Errorf("dual-mic sweep %v° not shorter than single-mic %v°",
			dual.HalfAngleDeg, single.HalfAngleDeg)
	}
}

func TestDualMicVerifierErrors(t *testing.T) {
	if _, err := TrainDualMicVerifier(nil, nil, 1); err == nil {
		t.Error("empty training accepted")
	}
	var v *DualMicVerifier
	if v.Verify(nil).Pass {
		t.Error("nil verifier must not pass")
	}
	trained := trainedDualMic(t, 2)
	if trained.Verify(nil).Pass {
		t.Error("empty measurements must not pass")
	}
}

func TestDualMicCatchesTube(t *testing.T) {
	// The tube opening is compact, but its comb-filtered spectrum still
	// betrays it through the per-band structure.
	v := trainedDualMic(t, 3)
	rng := rand.New(rand.NewSource(60))
	cfg := soundfield.DefaultDualMic(0.06)
	tube := &soundfield.Tube{OpeningRadius: 0.015, Length: 0.33, LevelAt1m: 62}
	var rejected int
	const n = 10
	for i := 0; i < n; i++ {
		ms, err := soundfield.DualMicSweep(tube, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Verify(ms).Pass {
			rejected++
		}
	}
	if rejected < n-1 {
		t.Errorf("tube rejected %d/%d via dual-mic", rejected, n)
	}
}
