package core

import (
	"fmt"
	"math/rand"

	"voiceguard/internal/soundfield"
	"voiceguard/internal/svm"
	"voiceguard/internal/telemetry"
)

// SoundFieldVerifier implements stage 2 (§IV-B2): linear SVMs trained to
// accept sound fields shaped like a human mouth and reject machine
// sources — most importantly earphones, whose magnets are too weak for
// stage 3 to sense.
//
// The sound field's discriminative structure changes with the sweep
// standoff (the sweep's angular width is set by the fixed lateral hand
// travel), so one model is trained per angular-width band and selected at
// verification time from the sweep geometry itself — an attacker cannot
// influence the selection except by actually changing the distance, which
// the measurements then reflect.
type SoundFieldVerifier struct {
	// models maps a band key (rounded sweep half-width in degrees) to
	// its classifier.
	models map[int]*svm.Model
}

// bandKey reduces a sweep to its model-selection key: the rounded maximum
// measurement angle.
func bandKey(ms []soundfield.Measurement) int {
	var maxAng float64
	for _, m := range ms {
		a := m.AngleDeg
		if a < 0 {
			a = -a
		}
		if a > maxAng {
			maxAng = a
		}
	}
	return int(maxAng + 0.5)
}

// TrainSoundFieldVerifier fits the verifier from labeled sweeps:
// mouthSweeps are positive examples, machineSweeps negative (earphones,
// cones, tubes...). Sweeps are grouped into angular-width bands and one
// SVM is trained per band.
func TrainSoundFieldVerifier(mouthSweeps, machineSweeps [][]soundfield.Measurement, seed int64) (*SoundFieldVerifier, error) {
	if len(mouthSweeps) == 0 || len(machineSweeps) == 0 {
		return nil, fmt.Errorf("core: sound-field training needs both classes (%d mouth, %d machine)",
			len(mouthSweeps), len(machineSweeps))
	}
	type cell struct {
		x [][]float64
		y []int
	}
	bands := make(map[int]*cell)
	add := func(ms []soundfield.Measurement, label int) {
		k := bandKey(ms)
		c := bands[k]
		if c == nil {
			c = &cell{}
			bands[k] = c
		}
		c.x = append(c.x, soundfield.FeatureVector(ms))
		c.y = append(c.y, label)
	}
	for _, ms := range mouthSweeps {
		add(ms, 1)
	}
	for _, ms := range machineSweeps {
		add(ms, -1)
	}
	v := &SoundFieldVerifier{models: make(map[int]*svm.Model, len(bands))}
	for k, c := range bands {
		model, err := svm.Train(c.x, c.y, svm.TrainConfig{Seed: seed + int64(k), Lambda: 1e-2})
		if err != nil {
			return nil, fmt.Errorf("core: training sound-field SVM band %d°: %w", k, err)
		}
		v.models[k] = model
	}
	return v, nil
}

// modelFor returns the band model nearest to the sweep's angular width.
func (v *SoundFieldVerifier) modelFor(ms []soundfield.Measurement) *svm.Model {
	if len(v.models) == 0 {
		return nil
	}
	k := bandKey(ms)
	bestDist := 1 << 30
	var best *svm.Model
	for bk, m := range v.models {
		d := bk - k
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestDist = d
			best = m
		}
	}
	return best
}

// DefaultSoundFieldTraining generates the standard training set: mouth
// sweeps as positives; earphone, representative cones and tube sweeps as
// negatives, across the plausible gesture distance range.
func DefaultSoundFieldTraining(seed int64) (mouth, machine [][]soundfield.Measurement, err error) {
	rng := rand.New(rand.NewSource(seed))
	// Cover the whole plausible gesture range so the verifier inter-
	// polates rather than extrapolates at off-nominal distances.
	distances := []float64{0.04, 0.05, 0.06, 0.08, 0.10, 0.12, 0.14}
	negatives := []soundfield.Source{
		soundfield.Earphone(),
		soundfield.ConeSpeaker("small-cone", 0.02),
		soundfield.ConeSpeaker("pc-cone", 0.04),
		soundfield.ConeSpeaker("large-cone", 0.065),
		// §VII: electrostatic panels have no usable magnetic signature,
		// so the sound-field component must know their (very large)
		// geometry.
		soundfield.Electrostatic(),
	}
	// Tube negatives span opening sizes and lengths so the verifier
	// generalizes across the §VII attack's parameter space.
	for _, r := range []float64{0.010, 0.015, 0.020} {
		for _, l := range []float64{0.15, 0.25, 0.35, 0.45} {
			negatives = append(negatives, &soundfield.Tube{OpeningRadius: r, Length: l, LevelAt1m: 60})
		}
	}
	// Balance the classes: the hinge loss shifts its boundary toward the
	// majority class where the classes overlap (far distances), so the
	// mouth class gets as many sweeps per distance as all machine
	// sources combined.
	const perNegative = 3
	mouthPerCell := len(negatives) * perNegative
	for _, d := range distances {
		for i := 0; i < mouthPerCell; i++ {
			ms, err := soundfield.Sweep(soundfield.Mouth(), soundfield.DefaultSweep(d), rng)
			if err != nil {
				return nil, nil, err
			}
			mouth = append(mouth, ms)
		}
		for _, src := range negatives {
			for i := 0; i < perNegative; i++ {
				ms, err := soundfield.Sweep(src, soundfield.DefaultSweep(d), rng)
				if err != nil {
					return nil, nil, err
				}
				machine = append(machine, ms)
			}
		}
	}
	return mouth, machine, nil
}

// Verify classifies a sweep.
func (v *SoundFieldVerifier) Verify(ms []soundfield.Measurement) (res StageResult) {
	return v.VerifySpan(nil, ms)
}

// VerifySpan is Verify attaching its decision evidence to span (nil
// disables tracing at zero cost): the SVM margin, the accept threshold
// (zero: the decision boundary), and the selected angular-width band,
// plus an "svm-margin" child around classification. The caller owns
// span's End.
func (v *SoundFieldVerifier) VerifySpan(span *telemetry.Span, ms []soundfield.Measurement) (res StageResult) {
	defer TimeStage(&res)()
	res.Stage = StageSoundField
	if v == nil || len(v.models) == 0 {
		res.Detail = "verifier not trained"
		return res
	}
	if len(ms) == 0 {
		res.Detail = "no sound-field measurements"
		return res
	}
	sub := span.StartSpan("svm-margin")
	model := v.modelFor(ms)
	margin := model.Margin(soundfield.FeatureVector(ms))
	sub.End()
	span.SetFloat("svm_margin", margin, "")
	span.SetFloat("threshold_margin", 0, "")
	span.SetInt("band_deg", int64(bandKey(ms)))
	res.Evidence[0] = EvidenceValue{Metric: EvidenceSVMMargin, Value: margin}
	res.Score = margin
	if margin >= 0 {
		res.Pass = true
		res.Detail = fmt.Sprintf("mouth-like sound field (margin %.2f)", margin)
	} else {
		res.Detail = fmt.Sprintf("machine-like sound field (margin %.2f)", margin)
	}
	return res
}
