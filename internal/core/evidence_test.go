package core

import (
	"testing"
	"time"

	"voiceguard/internal/audio"
	"voiceguard/internal/evidence"
	"voiceguard/internal/geometry"
	"voiceguard/internal/sensors"
	"voiceguard/internal/soundfield"
	"voiceguard/internal/trajectory"
)

func evidenceTestSession() *SessionData {
	tr := func(name string) *sensors.Trace {
		t := &sensors.Trace{Name: name}
		for i := 0; i < 5; i++ {
			t.Samples = append(t.Samples, sensors.Sample{
				T: float64(i) * 0.01,
				V: geometry.Vec3{X: float64(i), Y: -0.5, Z: 42.1},
			})
		}
		return t
	}
	return &SessionData{
		ClaimedUser: "victim",
		Gesture: &trajectory.Gesture{
			Gyro:       tr("gyro"),
			Accel:      tr("accel"),
			Mag:        tr("mag"),
			Capture:    &audio.Signal{Rate: 16000, Samples: []float64{0.1, -0.2, 0.3}},
			SweepStart: 0.5,
			SweepEnd:   1.5,
		},
		Field: []soundfield.Measurement{
			{AngleDeg: -30, FreqHz: 1000, LevelDB: 62.5},
			{AngleDeg: 30, FreqHz: 1000, LevelDB: 61.0},
		},
		Voice: &audio.Signal{Rate: 16000, Samples: []float64{0.01, 0.02, -0.03}},
	}
}

func TestSessionDigestStable(t *testing.T) {
	s := evidenceTestSession()
	d1 := SessionDigest(s)
	d2 := SessionDigest(s)
	if d1 != d2 {
		t.Fatalf("SessionDigest not deterministic: %s vs %s", d1, d2)
	}
	if !evidence.ValidDigest(d1) {
		t.Fatalf("malformed session digest %q", d1)
	}
	s.Voice.Samples[0] += 1e-12
	if SessionDigest(s) == d1 {
		t.Fatal("session digest insensitive to a one-ULP-scale sample change")
	}
}

func TestAudioDigestFrames(t *testing.T) {
	sig := &audio.Signal{Rate: 16000, Samples: make([]float64, 1000)}
	for i := range sig.Samples {
		sig.Samples[i] = float64(i) / 1000
	}
	ad := AudioDigest("voice", sig, 400)
	if ad.Samples != 1000 || ad.FrameLen != 400 {
		t.Fatalf("AudioDigest geometry: %+v", ad)
	}
	if len(ad.FrameDigests) != 3 { // 400 + 400 + 200
		t.Fatalf("frame digest count %d, want 3", len(ad.FrameDigests))
	}
	if !evidence.ValidDigest(ad.Digest) {
		t.Fatalf("malformed whole-signal digest %q", ad.Digest)
	}
	again := AudioDigest("voice", sig, 400)
	if again.Digest != ad.Digest || again.FrameDigests[2] != ad.FrameDigests[2] {
		t.Fatal("AudioDigest not deterministic")
	}
}

// TestSystemModelDigestsStable asserts two systems built from the same
// seed digest identically — the property pack replay's model check rests
// on — and that a different seed digests differently.
func TestSystemModelDigestsStable(t *testing.T) {
	build := func(seed int64) map[string]string {
		t.Helper()
		sys, err := BuildSystem(SystemConfig{FieldSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.ModelDigests()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := build(7)
	b := build(7)
	if len(a) == 0 {
		t.Fatal("no model digests")
	}
	for k, v := range a {
		if !evidence.ValidDigest(v) {
			t.Fatalf("model %s: malformed digest %q", k, v)
		}
		if b[k] != v {
			t.Fatalf("model %s: same seed digests differ: %s vs %s", k, v, b[k])
		}
	}
	c := build(8)
	same := true
	for k, v := range a {
		if c[k] != v {
			same = false
		}
	}
	if same {
		t.Fatal("different field seeds produced identical model digests")
	}
}

func TestDecisionEvidenceProjection(t *testing.T) {
	d := Decision{
		Accepted:    false,
		FailedStage: StageLoudspeaker,
		TraceID:     "t-1",
		Elapsed:     1500 * time.Microsecond,
		Stages: []StageResult{
			{Stage: StageDistance, Pass: true, Score: 0.015, Detail: "ok", Elapsed: 200 * time.Microsecond},
			{Stage: StageSoundField, Pass: true, Score: 0.4},
			{Stage: StageLoudspeaker, Pass: false, Score: -130.2, Detail: "magnet"},
		},
	}
	rec := DecisionEvidence(d)
	if rec.TraceID != "t-1" || rec.Accepted || rec.FailedStage != "loudspeaker" {
		t.Fatalf("projection header: %+v", rec)
	}
	if rec.ElapsedUS != 1500 {
		t.Fatalf("ElapsedUS = %d", rec.ElapsedUS)
	}
	if len(rec.Stages) != 3 {
		t.Fatalf("stage count %d", len(rec.Stages))
	}
	if rec.Stages[0].Stage != "distance" || !rec.Stages[0].Pass || rec.Stages[0].ElapsedUS != 200 {
		t.Fatalf("stage 0: %+v", rec.Stages[0])
	}
	if rec.Stages[2].ScoreBits != evidence.FloatBits(-130.2) {
		t.Fatalf("score bits %s", rec.Stages[2].ScoreBits)
	}
	back, err := evidence.BitsFloat(rec.Stages[2].ScoreBits)
	if err != nil || back != -130.2 {
		t.Fatalf("bits round trip: %v, %v", back, err)
	}
}
