package core

// Tracing tests: Verify must stamp every decision with a trace ID, a
// total pipeline latency and a per-stage Elapsed breakdown.

import (
	"math/rand"
	"testing"

	"voiceguard/internal/speech"
)

func TestVerifyPopulatesTraceAndTimings(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(7)))
	session := genuineSessionFor(t, victim, "135792", 7)

	d, err := sys.Verify(session)
	if err != nil {
		t.Fatal(err)
	}
	if d.TraceID == "" {
		t.Error("Verify left TraceID empty")
	}
	if d.Elapsed <= 0 {
		t.Error("Verify left total Elapsed unset")
	}
	// Stages run concurrently, so their Elapsed values may sum past the
	// wall-clock total; the invariant that survives the fan-out is that
	// every stage is stamped and no single stage exceeds the total.
	for i, st := range d.Stages {
		if st.Elapsed <= 0 {
			t.Errorf("stage %d (%v) Elapsed = %v, want > 0", i, st.Stage, st.Elapsed)
		}
		if st.Elapsed > d.Elapsed {
			t.Errorf("stage %d (%v) Elapsed %v exceeds total %v", i, st.Stage, st.Elapsed, d.Elapsed)
		}
	}
}

func TestVerifyTracedUsesCallerID(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(8)))
	session := genuineSessionFor(t, victim, "135792", 8)

	d, err := sys.VerifyTraced("req-abc123", session)
	if err != nil {
		t.Fatal(err)
	}
	if d.TraceID != "req-abc123" {
		t.Errorf("TraceID = %q, want caller-supplied req-abc123", d.TraceID)
	}
	// An empty caller ID is replaced, never propagated.
	d2, err := sys.VerifyTraced("", session)
	if err != nil {
		t.Fatal(err)
	}
	if d2.TraceID == "" {
		t.Error("empty trace ID propagated to decision")
	}
	if d2.TraceID == d.TraceID {
		t.Error("trace IDs not unique across verifications")
	}
}

func TestVerifyDistinctTraceIDs(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 9, DisableField: true})
	if err != nil {
		t.Fatal(err)
	}
	victim := speech.RandomProfile("victim", rand.New(rand.NewSource(9)))
	session := genuineSessionFor(t, victim, "135792", 9)
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		d, err := sys.Verify(session)
		if err != nil {
			t.Fatal(err)
		}
		if seen[d.TraceID] {
			t.Fatalf("trace ID %q repeated", d.TraceID)
		}
		seen[d.TraceID] = true
	}
}
