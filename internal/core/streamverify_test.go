package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/geometry"
	"voiceguard/internal/ranging"
	"voiceguard/internal/sensors"
	"voiceguard/internal/speech"
	"voiceguard/internal/trajectory"
)

// feedStream replays a session's channels through a StreamVerifier the
// way the protocol bridge does: hello and marks first, sensors in small
// interleaved chunks, then field, capture and voice. It returns the
// decision, whether it arrived before Finish, and the verifier.
func feedStream(t *testing.T, sys *System, session *SessionData, chunk int) (Decision, bool, *StreamVerifier) {
	t.Helper()
	ctx := context.Background()
	v, err := sys.NewStreamVerifier("stream-test")
	if err != nil {
		t.Fatal(err)
	}
	g := session.Gesture
	if err := v.OfferHello(ctx, session.ClaimedUser, ranging.DefaultPilotHz); err != nil {
		t.Fatal(err)
	}
	if err := v.SetMarks(ctx, g.SweepStart, g.SweepEnd); err != nil {
		t.Fatal(err)
	}
	early := func(d *Decision, err error) (Decision, bool, *StreamVerifier) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return *d, true, v
	}
	offerTrace := func(tr *sensors.Trace, offer func(context.Context, []sensors.Sample, bool) (*Decision, error)) (*Decision, error) {
		for off := 0; off < len(tr.Samples); off += chunk {
			end := off + chunk
			if end > len(tr.Samples) {
				end = len(tr.Samples)
			}
			d, err := offer(ctx, tr.Samples[off:end], end == len(tr.Samples))
			if d != nil || err != nil {
				return d, err
			}
		}
		return nil, nil
	}
	// Magnetometer first: the earliest decisive channel.
	if d, err := offerTrace(g.Mag, v.OfferMag); d != nil || err != nil {
		return early(d, err)
	}
	if d, err := offerTrace(g.Gyro, v.OfferGyro); d != nil || err != nil {
		return early(d, err)
	}
	if d, err := offerTrace(g.Accel, v.OfferAccel); d != nil || err != nil {
		return early(d, err)
	}
	if d, err := v.OfferField(ctx, session.Field, true); d != nil || err != nil {
		return early(d, err)
	}
	if d, err := v.OfferCapture(ctx, g.Capture.Rate, g.Capture.Samples, true); d != nil || err != nil {
		return early(d, err)
	}
	if d, err := v.OfferVoice(ctx, session.Voice.Rate, session.Voice.Samples, true); d != nil || err != nil {
		return early(d, err)
	}
	d, err := v.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return d, false, v
}

// rebuiltSession mirrors what the HTTP path verifies: the gesture is
// re-fused from the raw uploaded traces (protocol.ToSession calls
// trajectory.FromUpload), so both protocols must verify the *same*
// re-fused inputs for score bits to compare.
func rebuiltSession(t *testing.T, session *SessionData) *SessionData {
	t.Helper()
	g := session.Gesture
	rg, err := trajectory.FromUpload(g.Gyro, g.Accel, g.Mag, g.Capture,
		ranging.DefaultPilotHz, g.SweepStart, g.SweepEnd)
	if err != nil {
		t.Fatal(err)
	}
	return &SessionData{
		ClaimedUser: session.ClaimedUser,
		Gesture:     rg,
		Field:       session.Field,
		Voice:       session.Voice,
	}
}

func TestStreamVerifierMatchesBatchVerdictBitForBit(t *testing.T) {
	victim := speech.NewDistinctRoster(2, 200, 1.2).Profiles()[0]
	sys := fullSystem(t, victim, "135792", 200)
	session := genuineSessionFor(t, victim, "135792", 201)

	batch, err := sys.VerifyContext(context.Background(), "batch-test", rebuiltSession(t, session))
	if err != nil {
		t.Fatal(err)
	}
	streamed, early, _ := feedStream(t, sys, session, 64)

	if !batch.Accepted || !streamed.Accepted {
		t.Fatalf("genuine verdicts: batch=%v stream=%v", batch.Accepted, streamed.Accepted)
	}
	if early {
		t.Fatal("genuine session decided before finish")
	}
	if len(batch.Stages) != len(streamed.Stages) {
		t.Fatalf("stage counts differ: batch=%d stream=%d", len(batch.Stages), len(streamed.Stages))
	}
	for i := range batch.Stages {
		b, s := batch.Stages[i], streamed.Stages[i]
		if b.Stage != s.Stage || b.Pass != s.Pass {
			t.Errorf("stage %d: batch=%v/%v stream=%v/%v", i, b.Stage, b.Pass, s.Stage, s.Pass)
		}
		if math.Float64bits(b.Score) != math.Float64bits(s.Score) {
			t.Errorf("stage %v score bits differ: batch=%x stream=%x",
				b.Stage, math.Float64bits(b.Score), math.Float64bits(s.Score))
		}
		if b.Detail != s.Detail {
			t.Errorf("stage %v detail differs: %q vs %q", b.Stage, b.Detail, s.Detail)
		}
	}
}

// magneticAttackSession plants a loudspeaker-grade magnetic swing in the
// second half of an otherwise genuine session's magnetometer trace, so a
// chunked upload trips the settled-prefix check mid-channel.
func magneticAttackSession(t *testing.T, victim speech.Profile, seed int64) *SessionData {
	t.Helper()
	session := genuineSessionFor(t, victim, "135792", seed)
	mag := session.Gesture.Mag
	n := mag.Len()
	for i := n / 2; i < n; i++ {
		// Ramp toward a strong driver field: tens of µT over ~100 ms.
		mag.Samples[i].V = geometry.Vec3{X: 40 + float64(i-n/2)*2, Y: 5, Z: -30}
	}
	return session
}

func TestStreamVerifierEarlyRejectsOnMagnetometerPrefix(t *testing.T) {
	victim := speech.NewDistinctRoster(2, 200, 1.2).Profiles()[0]
	sys := fullSystem(t, victim, "135792", 200)
	session := magneticAttackSession(t, victim, 201)

	streamed, early, v := feedStream(t, sys, session, 16)
	if streamed.Accepted {
		t.Fatal("loudspeaker session accepted")
	}
	if !early {
		t.Fatal("loudspeaker session not decided before finish")
	}
	if streamed.FailedStage != StageLoudspeaker {
		t.Fatalf("failed stage = %v, want loudspeaker", streamed.FailedStage)
	}
	// The batch path agrees on the verdict (early exit is sound).
	batch, err := sys.VerifyContext(context.Background(), "batch-mag", rebuiltSession(t, session))
	if err != nil {
		t.Fatal(err)
	}
	if batch.Accepted {
		t.Fatal("batch accepted the loudspeaker session the stream rejected")
	}
	// Trailing chunks after the decision are swallowed, and Finish
	// replays the decision idempotently.
	if d, err := v.OfferVoice(context.Background(), 16000, []float64{0}, true); d != nil || err != nil {
		t.Fatalf("post-decision chunk: d=%v err=%v", d, err)
	}
	again, err := v.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.TraceID != streamed.TraceID || again.Accepted != streamed.Accepted {
		t.Fatal("Finish after decision did not replay the decision")
	}
}

func TestStreamVerifierAbandonsOnDeadContext(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 320})
	if err != nil {
		t.Fatal(err)
	}
	v, err := sys.NewStreamVerifier("dead-ctx")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := v.OfferMag(ctx, []sensors.Sample{{T: 0}}, false); err == nil {
		t.Fatal("dead context admitted a chunk")
	}
	// The verifier is terminally closed, never deciding.
	if _, err := v.Finish(context.Background()); err == nil {
		t.Fatal("abandoned stream produced a verdict")
	}
	if v.Decided() != nil {
		t.Fatal("abandoned stream has a decision")
	}
}

func TestStreamVerifierRefusesMalformedStreams(t *testing.T) {
	sys, err := BuildSystem(SystemConfig{FieldSeed: 330})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	v, err := sys.NewStreamVerifier("")
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID() == "" {
		t.Fatal("no trace ID minted")
	}
	if err := v.OfferHello(ctx, "u", 19000); err != nil {
		t.Fatal(err)
	}
	if err := v.OfferHello(ctx, "u", 19000); err == nil {
		t.Fatal("duplicate hello accepted")
	}

	v2, err := sys.NewStreamVerifier("closed-channel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.OfferGyro(ctx, nil, true); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.OfferGyro(ctx, []sensors.Sample{{T: 1}}, false); err == nil {
		t.Fatal("chunk after channel close accepted")
	}
	// A failed stream refuses everything afterward.
	if _, err := v2.OfferAccel(ctx, nil, true); err == nil {
		t.Fatal("closed verifier admitted a chunk")
	}

	v3, err := sys.NewStreamVerifier("premature-finish")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v3.Finish(ctx); err == nil {
		t.Fatal("finish before any channel closed produced a verdict")
	}
}

// TestSettledMetricsIsMonotoneLowerBound pins the soundness invariant of
// the early exit: on every prefix of a noisy trace, the settled swing
// and rate never exceed the full-trace Measure values, and never
// decrease as the prefix grows.
func TestSettledMetricsIsMonotoneLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	full := &sensors.Trace{Name: "mag"}
	for i := 0; i < 200; i++ {
		full.Samples = append(full.Samples, sensors.Sample{
			T: float64(i) * 0.01,
			V: geometry.Vec3{
				X: 30 + rng.NormFloat64()*3 + float64(i)*0.2,
				Y: rng.NormFloat64() * 3,
				Z: -20 + rng.NormFloat64()*3,
			},
		})
	}
	final := Measure(full)
	var prevSwing, prevRate float64
	for n := 2; n <= len(full.Samples); n++ {
		prefix := &sensors.Trace{Name: "mag", Samples: full.Samples[:n]}
		m, ok := settledMetrics(prefix)
		if !ok {
			continue
		}
		if m.Swing > final.Swing || m.MaxRate > final.MaxRate {
			t.Fatalf("prefix %d exceeds final metrics: %+v vs %+v", n, m, final)
		}
		if m.Swing < prevSwing || m.MaxRate < prevRate {
			t.Fatalf("prefix %d not monotone: %+v after swing=%v rate=%v", n, m, prevSwing, prevRate)
		}
		prevSwing, prevRate = m.Swing, m.MaxRate
	}
	if _, ok := settledMetrics(nil); ok {
		t.Fatal("nil trace produced settled metrics")
	}
	if _, ok := settledMetrics(&sensors.Trace{Samples: full.Samples[:2]}); ok {
		t.Fatal("2-sample trace produced settled metrics")
	}
}
