package soundfield

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/geometry"
)

// This file implements the paper's §VII "Dual Microphones" extension:
// phones like the Nexus 4 carry a second (noise-cancellation) microphone,
// and the sound level difference (SLD) between the two mics adds a
// distance- and size-sensitive observable that reduces the sweep motion
// the sound-field verifier needs. The primary mic sits at the phone's
// bottom edge near the source during the gesture; the secondary mic sits
// at the top, roughly a phone length farther away. A nearby compact
// source produces a large SLD (the level falls steeply across the phone);
// an extended or distant source flattens it.

// DualMicConfig describes the two-microphone layout and the measurement.
type DualMicConfig struct {
	// Distance is the primary-mic standoff from the source in meters.
	Distance float64 // unit: m
	// MicSpacing is the distance between the two microphones in meters
	// (phone length, ≈0.12 for the paper's testbeds).
	MicSpacing float64 // unit: m
	// ProbeFreqs are the analysis bands in Hz.
	ProbeFreqs []float64
	// Positions is the number of (shortened) sweep positions.
	Positions int
	// HalfAngleDeg is the shortened sweep half-width. The whole point of
	// the dual-mic extension is that this can be much smaller than the
	// single-mic sweep.
	HalfAngleDeg float64
	// NoiseDB is the per-measurement level noise.
	NoiseDB float64
}

// DefaultDualMic returns the §VII configuration: half the single-mic
// sweep width, the Nexus-class mic spacing.
// unit: distance m
func DefaultDualMic(distance float64) DualMicConfig {
	if distance <= 0 {
		distance = 0.06
	}
	single := DefaultSweep(distance)
	return DualMicConfig{
		Distance:     distance,
		MicSpacing:   0.12,
		ProbeFreqs:   single.ProbeFreqs,
		Positions:    12,
		HalfAngleDeg: single.HalfAngleDeg / 2,
		NoiseDB:      single.NoiseDB,
	}
}

// SLDMeasurement is one dual-mic sample: the primary level and the
// level difference to the secondary mic in one band at one position.
type SLDMeasurement struct {
	// AngleDeg is the sweep position.
	AngleDeg float64
	// FreqHz is the analysis band.
	FreqHz float64
	// PrimaryDB is the primary-mic level.
	PrimaryDB float64
	// SLDB is primary minus secondary level in dB (positive when the
	// primary mic, nearer the source, is louder).
	SLDB float64
}

// DualMicSweep samples a source with both microphones along the
// shortened sweep.
func DualMicSweep(src Source, cfg DualMicConfig, rng *rand.Rand) ([]SLDMeasurement, error) {
	if cfg.Positions < 2 {
		return nil, fmt.Errorf("soundfield: dual-mic sweep needs ≥2 positions, have %d", cfg.Positions)
	}
	if cfg.Distance <= 0 || cfg.MicSpacing <= 0 {
		return nil, fmt.Errorf("soundfield: bad dual-mic geometry d=%v spacing=%v", cfg.Distance, cfg.MicSpacing)
	}
	if len(cfg.ProbeFreqs) == 0 {
		return nil, fmt.Errorf("soundfield: no probe frequencies")
	}
	out := make([]SLDMeasurement, 0, cfg.Positions*len(cfg.ProbeFreqs))
	for i := 0; i < cfg.Positions; i++ {
		frac := float64(i)/float64(cfg.Positions-1)*2 - 1
		angle := frac * cfg.HalfAngleDeg * math.Pi / 180
		// Primary mic on the sweep arc; secondary a phone length farther
		// along the same bearing.
		dir := geometry.Vec2{X: math.Cos(angle), Y: math.Sin(angle)}
		primary := dir.Scale(cfg.Distance)
		secondary := dir.Scale(cfg.Distance + cfg.MicSpacing)
		for _, f := range cfg.ProbeFreqs {
			lp := src.IntensityDB(primary, f)
			ls := src.IntensityDB(secondary, f)
			if cfg.NoiseDB > 0 {
				lp += rng.NormFloat64() * cfg.NoiseDB
				ls += rng.NormFloat64() * cfg.NoiseDB
			}
			out = append(out, SLDMeasurement{
				AngleDeg:  frac * cfg.HalfAngleDeg,
				FreqHz:    f,
				PrimaryDB: lp,
				SLDB:      lp - ls,
			})
		}
	}
	return out, nil
}

// SLDFeatureVector flattens dual-mic measurements for the SVM: per-band
// mean-centered primary levels (the shortened sweep's spatial shape) plus
// the raw SLD values (absolute-loudness-invariant by construction: a gain
// change shifts both mics equally).
func SLDFeatureVector(ms []SLDMeasurement) []float64 {
	if len(ms) == 0 {
		return nil
	}
	bandOrder := make([]float64, 0, 8)
	byBand := make(map[float64][]SLDMeasurement)
	for _, m := range ms {
		if _, ok := byBand[m.FreqHz]; !ok {
			bandOrder = append(bandOrder, m.FreqHz)
		}
		byBand[m.FreqHz] = append(byBand[m.FreqHz], m)
	}
	out := make([]float64, 0, 2*len(ms))
	for _, f := range bandOrder {
		group := byBand[f]
		var mean float64
		for _, m := range group {
			mean += m.PrimaryDB
		}
		mean /= float64(len(group))
		for _, m := range group {
			out = append(out, m.PrimaryDB-mean)
		}
		for _, m := range group {
			out = append(out, m.SLDB)
		}
	}
	return out
}

// ExpectedPointSourceSLD returns the SLD a point source at the given
// standoff would produce across the mic spacing — the far-field
// reference the verifier's features are compared against implicitly.
// unit: distance m, spacing m
func ExpectedPointSourceSLD(distance, spacing float64) float64 {
	if distance <= 0 || spacing <= 0 {
		return 0
	}
	return 20 * math.Log10((distance+spacing)/distance)
}
