package soundfield

import (
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/geometry"
	"voiceguard/internal/pca"
	"voiceguard/internal/svm"
)

func TestBesselJ1KnownValues(t *testing.T) {
	// Reference values of J1.
	cases := []struct{ x, want float64 }{
		{0, 0},
		{1, 0.4400505857},
		{2, 0.5767248078},
		{3.8317, 0.0000184}, // first zero of J1
		{5, -0.3275791376},
		{10, 0.0434727462},
		{-1, -0.4400505857},
	}
	for _, tc := range cases {
		got := besselJ1(tc.x)
		if math.Abs(got-tc.want) > 2e-4 {
			t.Errorf("J1(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestPistonDirectivityOnAxis(t *testing.T) {
	if d := pistonDirectivity(5, 0); math.Abs(d-1) > 1e-9 {
		t.Errorf("on-axis directivity = %v, want 1", d)
	}
	// Larger ka → narrower beam: off-axis response drops.
	small := pistonDirectivity(0.3, 0.6)
	large := pistonDirectivity(6, 0.6)
	if large >= small {
		t.Errorf("directivity should narrow with ka: small=%v large=%v", small, large)
	}
}

func TestPistonInverseDistance(t *testing.T) {
	p := &Piston{Label: "t", Radius: 0.01, LevelAt1m: 60}
	// Well beyond the Rayleigh distance, doubling r loses ~6 dB.
	l1 := p.IntensityDB(geometry.Vec2{X: 0.5}, 1500)
	l2 := p.IntensityDB(geometry.Vec2{X: 1.0}, 1500)
	if math.Abs((l1-l2)-6.02) > 0.1 {
		t.Errorf("distance law: %v dB per doubling, want ≈6", l1-l2)
	}
	// On axis at 1 m, level equals LevelAt1m.
	if math.Abs(l2-60) > 0.01 {
		t.Errorf("level at 1 m = %v, want 60", l2)
	}
}

func TestNearFieldFlattening(t *testing.T) {
	// A large cone has a long Rayleigh distance; very close to it the
	// level rises much less than spherical spreading predicts.
	big := &Piston{Label: "cone", Radius: 0.05, LevelAt1m: 66}
	smallSrc := &Piston{Label: "mouth", Radius: 0.012, LevelAt1m: 66}
	f := 4000.0
	gainBig := big.IntensityDB(geometry.Vec2{X: 0.02}, f) - big.IntensityDB(geometry.Vec2{X: 0.10}, f)
	gainSmall := smallSrc.IntensityDB(geometry.Vec2{X: 0.02}, f) - smallSrc.IntensityDB(geometry.Vec2{X: 0.10}, f)
	if gainBig >= gainSmall {
		t.Errorf("large source should show flatter near field: big=%v small=%v", gainBig, gainSmall)
	}
}

func TestSourceNames(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{Mouth(), "human-mouth"},
		{Earphone(), "earphone"},
		{ConeSpeaker("pc", 0.04), "pc"},
		{Electrostatic(), "electrostatic-panel"},
		{&Tube{OpeningRadius: 0.01, Length: 0.3}, "tube-r10mm-l30cm"},
	}
	for _, tc := range cases {
		if got := tc.src.Name(); got != tc.want {
			t.Errorf("name = %q, want %q", got, tc.want)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []SweepConfig{
		{Distance: 0.06, Points: 1, ProbeFreqs: []float64{1500}},
		{Distance: 0, Points: 10, ProbeFreqs: []float64{1500}},
		{Distance: 0.06, Points: 10},
		{Distance: 0.06, Points: 10, ProbeFreqs: []float64{1500, -1}},
	}
	for i, cfg := range bad {
		if _, err := Sweep(Mouth(), cfg, rng); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	ms, err := Sweep(Mouth(), DefaultSweep(0.06), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 24*5 {
		t.Errorf("measurements = %d, want 120", len(ms))
	}
	if math.Abs(ms[0].AngleDeg+49.4) > 0.1 || math.Abs(ms[len(ms)-1].AngleDeg-49.4) > 0.1 {
		t.Errorf("sweep angles %v..%v", ms[0].AngleDeg, ms[len(ms)-1].AngleDeg)
	}
}

func TestSweepSymmetricPattern(t *testing.T) {
	cfg := DefaultSweep(0.06)
	cfg.NoiseDB = 0
	nb := len(cfg.ProbeFreqs)
	ms, err := Sweep(Earphone(), cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	nPos := cfg.Points
	for i := 0; i < nPos; i++ {
		j := nPos - 1 - i
		for b := 0; b < nb; b++ {
			a, bm := ms[i*nb+b], ms[j*nb+b]
			if math.Abs(a.LevelDB-bm.LevelDB) > 1e-9 {
				t.Fatalf("earphone pattern should be symmetric: %v vs %v (band %v)", a.LevelDB, bm.LevelDB, a.FreqHz)
			}
		}
	}
}

func TestFeatureVector(t *testing.T) {
	ms := []Measurement{
		{AngleDeg: -40, FreqHz: 1500, LevelDB: 60},
		{AngleDeg: 0, FreqHz: 1500, LevelDB: 64},
		{AngleDeg: 40, FreqHz: 1500, LevelDB: 58},
	}
	fv := FeatureVector(ms)
	// 3 centered levels + 1 band tilt.
	if len(fv) != 4 {
		t.Fatalf("len = %d", len(fv))
	}
	var sum float64
	for _, v := range fv[:3] {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("level features sum to %v", sum)
	}
	if FeatureVector(nil) != nil {
		t.Error("empty measurements should give nil")
	}
	// Absolute loudness invariance: adding 20 dB everywhere changes nothing.
	loud := make([]Measurement, len(ms))
	copy(loud, ms)
	for i := range loud {
		loud[i].LevelDB += 20
	}
	fv2 := FeatureVector(loud)
	for i := range fv {
		if math.Abs(fv[i]-fv2[i]) > 1e-9 {
			t.Fatal("feature vector must be loudness-invariant")
		}
	}
	// Two bands produce per-band centering plus tilt features.
	multi := append(append([]Measurement{}, ms...),
		Measurement{AngleDeg: -40, FreqHz: 6000, LevelDB: 50},
		Measurement{AngleDeg: 0, FreqHz: 6000, LevelDB: 55},
		Measurement{AngleDeg: 40, FreqHz: 6000, LevelDB: 48},
	)
	fvm := FeatureVector(multi)
	if len(fvm) != 8 {
		t.Fatalf("multi-band len = %d, want 8", len(fvm))
	}
}

// gatherFeatures collects labeled sweep features for classifier tests.
func gatherFeatures(t *testing.T, src Source, n int, dist float64, rng *rand.Rand) [][]float64 {
	t.Helper()
	var out [][]float64
	for i := 0; i < n; i++ {
		ms, err := Sweep(src, DefaultSweep(dist), rng)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, FeatureVector(ms))
	}
	return out
}

func TestMouthVsEarphoneSeparable(t *testing.T) {
	// The core claim behind Fig. 8: mouth and earphone sound fields are
	// linearly separable after feature extraction.
	rng := rand.New(rand.NewSource(3))
	mouth := gatherFeatures(t, Mouth(), 40, 0.06, rng)
	ear := gatherFeatures(t, Earphone(), 40, 0.06, rng)
	var x [][]float64
	var y []int
	for _, f := range mouth {
		x = append(x, f)
		y = append(y, 1)
	}
	for _, f := range ear {
		x = append(x, f)
		y = append(y, -1)
	}
	m, err := svm.Train(x, y, svm.TrainConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Errorf("mouth/earphone SVM accuracy = %v", acc)
	}
	// Held-out data.
	mouthT := gatherFeatures(t, Mouth(), 20, 0.06, rng)
	earT := gatherFeatures(t, Earphone(), 20, 0.06, rng)
	var correct, total int
	for _, f := range mouthT {
		if m.Predict(f) == 1 {
			correct++
		}
		total++
	}
	for _, f := range earT {
		if m.Predict(f) == -1 {
			correct++
		}
		total++
	}
	if frac := float64(correct) / float64(total); frac < 0.9 {
		t.Errorf("held-out accuracy = %v", frac)
	}
}

func TestMouthVsConeSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mouth := gatherFeatures(t, Mouth(), 30, 0.06, rng)
	cone := gatherFeatures(t, ConeSpeaker("pc", 0.04), 30, 0.06, rng)
	var x [][]float64
	var y []int
	for _, f := range mouth {
		x = append(x, f)
		y = append(y, 1)
	}
	for _, f := range cone {
		x = append(x, f)
		y = append(y, -1)
	}
	m, err := svm.Train(x, y, svm.TrainConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Errorf("mouth/cone SVM accuracy = %v", acc)
	}
}

func TestPCAFig8Structure(t *testing.T) {
	// Reproduce the structure of the paper's Fig. 8: PCA projections of
	// mouth and earphone features form two separated clusters.
	rng := rand.New(rand.NewSource(5))
	mouth := gatherFeatures(t, Mouth(), 40, 0.06, rng)
	ear := gatherFeatures(t, Earphone(), 40, 0.06, rng)
	all := append(append([][]float64{}, mouth...), ear...)
	model, err := pca.Fit(all, 2)
	if err != nil {
		t.Fatal(err)
	}
	pm := model.ProjectAll(mouth)
	pe := model.ProjectAll(ear)
	centroid := func(pts [][]float64) (cx, cy float64) {
		for _, p := range pts {
			cx += p[0]
			cy += p[1]
		}
		n := float64(len(pts))
		return cx / n, cy / n
	}
	mx, my := centroid(pm)
	ex, ey := centroid(pe)
	sep := math.Hypot(mx-ex, my-ey)
	spread := func(pts [][]float64, cx, cy float64) float64 {
		var s float64
		for _, p := range pts {
			s += math.Hypot(p[0]-cx, p[1]-cy)
		}
		return s / float64(len(pts))
	}
	sm := spread(pm, mx, my)
	se := spread(pe, ex, ey)
	if sep < 2*(sm+se)/2 {
		t.Errorf("PCA clusters overlap: separation %v, spreads %v/%v", sep, sm, se)
	}
}

func TestTubeCombFiltering(t *testing.T) {
	tube := &Tube{OpeningRadius: 0.012, Length: 0.25, LevelAt1m: 60}
	// The response across nearby frequencies swings by the comb depth.
	p := geometry.Vec2{X: 0.06}
	minL, maxL := math.Inf(1), math.Inf(-1)
	for f := 1000.0; f <= 2000; f += 25 {
		l := tube.IntensityDB(p, f)
		minL = math.Min(minL, l)
		maxL = math.Max(maxL, l)
	}
	if maxL-minL < 10 {
		t.Errorf("tube comb swing = %v dB, want pronounced (≥10)", maxL-minL)
	}
	// Zero length disables the comb.
	flat := &Tube{OpeningRadius: 0.012, Length: 0, LevelAt1m: 60}
	l1 := flat.IntensityDB(p, 1000)
	l2 := flat.IntensityDB(p, 1010)
	if math.Abs(l1-l2) > 0.5 {
		t.Errorf("zero-length tube should not comb: %v vs %v", l1, l2)
	}
}

func BenchmarkSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultSweep(0.06)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(Mouth(), cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
