package soundfield

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualMicSweepValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []DualMicConfig{
		{Distance: 0.06, MicSpacing: 0.12, ProbeFreqs: []float64{1000}, Positions: 1},
		{Distance: 0, MicSpacing: 0.12, ProbeFreqs: []float64{1000}, Positions: 4},
		{Distance: 0.06, MicSpacing: 0, ProbeFreqs: []float64{1000}, Positions: 4},
		{Distance: 0.06, MicSpacing: 0.12, Positions: 4},
	}
	for i, cfg := range bad {
		if _, err := DualMicSweep(Mouth(), cfg, rng); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := DefaultDualMic(0.06)
	ms, err := DualMicSweep(Mouth(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != cfg.Positions*len(cfg.ProbeFreqs) {
		t.Errorf("measurements = %d", len(ms))
	}
}

func TestDualMicSLDSign(t *testing.T) {
	// The primary mic is nearer the source: the SLD must be positive for
	// every source type.
	cfg := DefaultDualMic(0.06)
	cfg.NoiseDB = 0
	rng := rand.New(rand.NewSource(2))
	for _, src := range []Source{Mouth(), Earphone(), ConeSpeaker("c", 0.04)} {
		ms, err := DualMicSweep(src, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.SLDB <= 0 {
				t.Errorf("%s: non-positive SLD %v at %v°", src.Name(), m.SLDB, m.AngleDeg)
				break
			}
		}
	}
}

func TestDualMicSLDNearPointPrediction(t *testing.T) {
	// A tiny source behaves like a point source: measured SLD close to
	// the analytic 20·log10((d+L)/d).
	cfg := DefaultDualMic(0.06)
	cfg.NoiseDB = 0
	rng := rand.New(rand.NewSource(3))
	ms, err := DualMicSweep(Earphone(), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedPointSourceSLD(0.06, 0.12)
	// On-axis positions only (middle of the sweep).
	var mid []SLDMeasurement
	for _, m := range ms {
		if math.Abs(m.AngleDeg) < 5 {
			mid = append(mid, m)
		}
	}
	if len(mid) == 0 {
		t.Fatal("no near-axis measurements")
	}
	for _, m := range mid {
		if math.Abs(m.SLDB-want) > 1.5 {
			t.Errorf("SLD %v at %v Hz, want ≈%v", m.SLDB, m.FreqHz, want)
		}
	}
}

func TestExpectedPointSourceSLD(t *testing.T) {
	// 6 cm standoff, 12 cm spacing → 3x distance ratio → ≈9.54 dB.
	if got := ExpectedPointSourceSLD(0.06, 0.12); math.Abs(got-9.54) > 0.01 {
		t.Errorf("SLD = %v, want 9.54", got)
	}
	if ExpectedPointSourceSLD(0, 0.12) != 0 || ExpectedPointSourceSLD(0.06, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestSLDFeatureVector(t *testing.T) {
	ms := []SLDMeasurement{
		{AngleDeg: -20, FreqHz: 1000, PrimaryDB: 60, SLDB: 9},
		{AngleDeg: 20, FreqHz: 1000, PrimaryDB: 62, SLDB: 10},
	}
	fv := SLDFeatureVector(ms)
	// 2 centered levels + 2 SLDs.
	if len(fv) != 4 {
		t.Fatalf("len = %d", len(fv))
	}
	if math.Abs(fv[0]+fv[1]) > 1e-9 {
		t.Error("levels not centered")
	}
	if fv[2] != 9 || fv[3] != 10 {
		t.Errorf("SLD features = %v", fv[2:])
	}
	if SLDFeatureVector(nil) != nil {
		t.Error("empty should be nil")
	}
	// Loudness invariance.
	loud := make([]SLDMeasurement, len(ms))
	copy(loud, ms)
	for i := range loud {
		loud[i].PrimaryDB += 15
	}
	fv2 := SLDFeatureVector(loud)
	for i := range fv {
		if math.Abs(fv[i]-fv2[i]) > 1e-9 {
			t.Fatal("features must be loudness-invariant")
		}
	}
}

func TestDualMicDiscriminatesLargeSources(t *testing.T) {
	// An extended source (electrostatic panel) flattens the SLD relative
	// to a compact one at the same standoff — the physical basis of the
	// dual-mic check.
	cfg := DefaultDualMic(0.06)
	cfg.NoiseDB = 0
	rng := rand.New(rand.NewSource(4))
	meanSLD := func(src Source) float64 {
		ms, err := DualMicSweep(src, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, m := range ms {
			s += m.SLDB
		}
		return s / float64(len(ms))
	}
	small := meanSLD(Earphone())
	panel := meanSLD(Electrostatic())
	if panel >= small-1 {
		t.Errorf("panel SLD %v not well below compact-source SLD %v", panel, small)
	}
}
