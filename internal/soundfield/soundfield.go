// Package soundfield models the spatial sound field radiated by different
// source geometries — a human mouth, an earphone driver, a loudspeaker
// cone, a sound tube, an electrostatic panel — and samples the intensity
// measurements the paper's sound-field verification component consumes
// (§IV-B2). The discriminating physics is source size: a baffled piston
// of radius a driven at wavelength λ beams with directivity controlled by
// ka = 2πa/λ, and its near field extends to the Rayleigh distance a²/λ.
// A mouth-sized opening, a tiny earphone and a large cone therefore
// produce measurably different (intensity, angle) profiles along the
// phone's sweep.
package soundfield

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/geometry"
)

// SpeedOfSound is the speed of sound in air, m/s.
const SpeedOfSound = 343.0

// Source is an acoustic radiator placed at the origin, radiating along +X.
type Source interface {
	// Name identifies the source for diagnostics.
	Name() string
	// IntensityDB returns the sound level in dB at a receiver position p
	// (meters, source at origin, main lobe along +X) for a probe
	// frequency f (Hz), relative to the source's on-axis level at 1 m.
	IntensityDB(p geometry.Vec2, f float64) float64
}

// Piston is a rigid circular piston in an infinite baffle — the standard
// model for mouths, earphone drivers and loudspeaker cones.
type Piston struct {
	// Label names the source.
	Label string
	// Radius is the effective radiator radius in meters (mouth ≈ 0.012,
	// earphone ≈ 0.005, PC speaker cone ≈ 0.04).
	Radius float64 // unit: m
	// LevelAt1m is the on-axis level at 1 m in dB (sets loudness).
	LevelAt1m float64 // unit: dB
}

var _ Source = (*Piston)(nil)

// Name implements Source.
func (p *Piston) Name() string { return p.Label }

// IntensityDB implements Source: spherical spreading beyond the Rayleigh
// distance, flattened inside it, shaped by the piston directivity
// 2·J1(ka·sinθ)/(ka·sinθ).
// unit: f Hz
func (p *Piston) IntensityDB(at geometry.Vec2, f float64) float64 {
	r := at.Norm()
	if r < 1e-4 {
		r = 1e-4
	}
	theta := math.Atan2(math.Abs(at.Y), at.X)
	lambda := SpeedOfSound / f
	ka := 2 * math.Pi * p.Radius / lambda
	d := pistonDirectivity(ka, theta)
	// Near-field flattening: inside the Rayleigh distance the level stops
	// rising at the 1/r rate.
	rayleigh := p.Radius * p.Radius / lambda
	eff := r
	if eff < rayleigh {
		eff = rayleigh
	}
	if eff < 1e-4 {
		eff = 1e-4
	}
	spread := -20 * math.Log10(eff)
	dir := 20 * math.Log10(math.Max(d, 1e-4))
	return p.LevelAt1m + spread + dir
}

// pistonDirectivity evaluates |2 J1(x)/x| with x = ka·sin(theta).
func pistonDirectivity(ka, theta float64) float64 {
	x := ka * math.Sin(theta)
	if math.Abs(x) < 1e-9 {
		return 1
	}
	return math.Abs(2 * besselJ1(x) / x)
}

// besselJ1 computes the Bessel function of the first kind of order one
// using the standard Abramowitz–Stegun rational polynomial approximations.
func besselJ1(x float64) float64 {
	ax := math.Abs(x)
	var y, ans float64
	if ax < 8 {
		y = x * x
		num := x * (72362614232.0 + y*(-7895059235.0+y*(242396853.1+
			y*(-2972611.439+y*(15704.48260+y*(-30.16036606))))))
		den := 144725228442.0 + y*(2300535178.0+y*(18583304.74+
			y*(99447.43394+y*(376.9991397+y))))
		ans = num / den
	} else {
		z := 8 / ax
		y = z * z
		xx := ax - 2.356194491
		p1 := 1.0 + y*(0.183105e-2+y*(-0.3516396496e-4+
			y*(0.2457520174e-5+y*(-0.240337019e-6))))
		p2 := 0.04687499995 + y*(-0.2002690873e-3+
			y*(0.8449199096e-5+y*(-0.88228987e-6+y*0.105787412e-6)))
		ans = math.Sqrt(0.636619772/ax) * (math.Cos(xx)*p1 - z*math.Sin(xx)*p2)
		if x < 0 {
			ans = -ans
		}
	}
	return ans
}

// Mouth returns the source model for a speaking human mouth. The mouth
// opening itself is small (~12 mm), but it radiates from a ~9 cm-radius
// head, and that baffle dominates the pattern: above ~1 kHz the head
// shadows side and rear directions by several dB — the phoneme-specific
// radiation measurements the paper cites (Katz & d'Alessandro) show
// exactly this structure. The head baffle is what separates a mouth from
// a small free-field driver of similar opening size.
func Mouth() Source {
	return &headBaffled{
		Piston:       Piston{Label: "human-mouth", Radius: 0.012, LevelAt1m: 60},
		HeadRadius:   0.09,
		ShadowMaxDB:  12,
		ShadowCorner: 1000,
	}
}

// headBaffled adds the head-baffle directivity of a mouth on a head.
type headBaffled struct {
	Piston
	// HeadRadius is the baffling head radius in meters.
	HeadRadius float64 // unit: m
	// ShadowMaxDB is the shadow depth at 90° for frequencies well above
	// ShadowCorner.
	ShadowMaxDB float64
	// ShadowCorner is the frequency in Hz where baffling takes hold
	// (ka_head ≈ 1.6 for a 9 cm head at 1 kHz).
	ShadowCorner float64 // unit: Hz
}

// IntensityDB implements Source.
func (h *headBaffled) IntensityDB(at geometry.Vec2, f float64) float64 {
	base := h.Piston.IntensityDB(at, f)
	theta := math.Atan2(math.Abs(at.Y), at.X)
	// Shadow grows with angle (∝ θ^1.5 toward the side) and with
	// frequency above the corner.
	fw := f / h.ShadowCorner
	fWeight := fw / (1 + fw)
	shadow := h.ShadowMaxDB * math.Pow(theta/(math.Pi/2), 1.5) * fWeight
	return base - shadow
}

// Earphone returns a small in-ear/earbud driver: ~5 mm radius, quieter,
// nearly omnidirectional at speech frequencies.
func Earphone() Source {
	return &Piston{Label: "earphone", Radius: 0.005, LevelAt1m: 52}
}

// ConeSpeaker returns a conventional loudspeaker cone of the given radius
// in meters (PC speakers 3–6 cm, laptop drivers 1.5–2.5 cm).
// unit: radius m
func ConeSpeaker(name string, radius float64) Source {
	return &Piston{Label: name, Radius: radius, LevelAt1m: 66}
}

// Tube models the paper's §VII sound-tube attack: a loudspeaker feeding a
// plastic CAB tube whose open end is presented to the phone. The opening
// radiates like a small piston, but the tube adds strong longitudinal
// resonances (comb filtering) that distort the intensity profile — the
// reason the paper's volunteers could not replicate a human sound field
// with tubes.
type Tube struct {
	// OpeningRadius is the tube mouth radius in meters.
	OpeningRadius float64 // unit: m
	// Length is the tube length in meters.
	Length float64 // unit: m
	// LevelAt1m is the driven on-axis level at 1 m in dB.
	LevelAt1m float64 // unit: dB
}

var _ Source = (*Tube)(nil)

// Name implements Source.
func (t *Tube) Name() string {
	return fmt.Sprintf("tube-r%.0fmm-l%.0fcm", t.OpeningRadius*1000, t.Length*100)
}

// IntensityDB implements Source.
// unit: f Hz
func (t *Tube) IntensityDB(at geometry.Vec2, f float64) float64 {
	opening := Piston{Label: "tube-opening", Radius: t.OpeningRadius, LevelAt1m: t.LevelAt1m}
	base := opening.IntensityDB(at, f)
	// Open-open tube resonances at n·c/(2L): response swings ±8 dB as the
	// probe frequency moves across the comb.
	if t.Length > 0 {
		phase := 2 * math.Pi * f * t.Length / SpeedOfSound
		base += 8 * math.Cos(2*phase)
	}
	return base
}

// Electrostatic models an electrostatic panel loudspeaker (§VII): a large
// planar radiator, highly directional, with near-field behavior over most
// hand-held distances.
func Electrostatic() Source {
	return &Piston{Label: "electrostatic-panel", Radius: 0.15, LevelAt1m: 64}
}

// Measurement is one sound-field sample: the level observed at a rotation
// angle of the phone sweep in one analysis band, mirroring the paper's
// feature tuples of (volume dB, rotation angle degree). Speech is
// broadband, so the verifier analyzes several bands per position.
type Measurement struct {
	// AngleDeg is the sweep rotation angle in degrees.
	AngleDeg float64
	// FreqHz is the analysis band center.
	FreqHz float64
	// LevelDB is the measured sound level in dB.
	LevelDB float64
}

// SweepConfig describes the phone's measurement sweep in front of the
// source.
type SweepConfig struct {
	// Distance is the phone-source distance in meters.
	Distance float64 // unit: m
	// HalfAngleDeg is the sweep half-width in degrees (the phone moves
	// from -HalfAngle to +HalfAngle across the source axis).
	HalfAngleDeg float64
	// Points is the number of sweep positions.
	Points int
	// ProbeFreqs are the analysis band centers in Hz. Speech carries
	// usable energy from ~300 Hz to ~7 kHz; the higher bands are where
	// source geometry shows.
	ProbeFreqs []float64
	// NoiseDB is the per-measurement Gaussian level noise.
	NoiseDB float64
}

// SweepLateralTravel is the lateral hand travel of the measurement sweep
// in meters: the user moves the phone ~±7 cm across the source, so the
// angular width of the sweep shrinks as the standoff distance grows.
const SweepLateralTravel = 0.07

// refStandoffMeters is the paper's nominal 6 cm standoff, the reference
// for the sweep noise-floor growth model; noiseFloorDB is the residual
// level error at that standoff after per-position frame averaging.
const (
	refStandoffMeters = 0.06
	noiseFloorDB      = 0.4
)

// DefaultSweep matches the paper's use case at the given standoff
// distance: 24 positions across a fixed ±7 cm lateral hand travel (so
// ±49° at 6 cm, narrowing at larger distances), three speech analysis
// bands. The per-position noise is the residual after averaging ~0.2 s of
// speech frames per position and grows with distance as the received SNR
// falls.
// unit: distance m
func DefaultSweep(distance float64) SweepConfig {
	if distance <= 0 {
		distance = 0.06
	}
	half := math.Atan(SweepLateralTravel/distance) * 180 / math.Pi
	if half < 15 {
		half = 15
	}
	return SweepConfig{
		Distance:     distance,
		HalfAngleDeg: half,
		Points:       24,
		ProbeFreqs:   []float64{1000, 2000, 3000, 4500, 6000},
		// Received level falls ~6 dB per distance doubling while the mic
		// noise floor is fixed, so the level-measurement error grows
		// super-linearly with standoff.
		NoiseDB: noiseFloorDB * (distance / refStandoffMeters) * (distance / refStandoffMeters),
	}
}

// Sweep samples the source's intensity along the arc described by cfg,
// producing Points × len(ProbeFreqs) measurements grouped by position.
func Sweep(src Source, cfg SweepConfig, rng *rand.Rand) ([]Measurement, error) {
	if cfg.Points < 2 {
		return nil, fmt.Errorf("soundfield: sweep needs ≥2 points, have %d", cfg.Points)
	}
	if cfg.Distance <= 0 {
		return nil, fmt.Errorf("soundfield: distance %v must be positive", cfg.Distance)
	}
	if len(cfg.ProbeFreqs) == 0 {
		return nil, fmt.Errorf("soundfield: no probe frequencies")
	}
	for _, f := range cfg.ProbeFreqs {
		if f <= 0 {
			return nil, fmt.Errorf("soundfield: probe frequency %v must be positive", f)
		}
	}
	out := make([]Measurement, 0, cfg.Points*len(cfg.ProbeFreqs))
	for i := 0; i < cfg.Points; i++ {
		frac := float64(i)/float64(cfg.Points-1)*2 - 1
		angle := frac * cfg.HalfAngleDeg * math.Pi / 180
		p := geometry.Vec2{
			X: cfg.Distance * math.Cos(angle),
			Y: cfg.Distance * math.Sin(angle),
		}
		for _, f := range cfg.ProbeFreqs {
			level := src.IntensityDB(p, f)
			if cfg.NoiseDB > 0 {
				level += rng.NormFloat64() * cfg.NoiseDB
			}
			out = append(out, Measurement{AngleDeg: frac * cfg.HalfAngleDeg, FreqHz: f, LevelDB: level})
		}
	}
	return out, nil
}

// FeatureVector flattens measurements into the SVM feature layout: within
// each analysis band the levels are centered on the band mean, removing
// absolute loudness (an attacker controls the volume knob) while keeping
// the spatial *shape*; band-to-band tilt relative to the overall mean is
// appended to keep the spectral footprint of the geometry.
func FeatureVector(ms []Measurement) []float64 {
	if len(ms) == 0 {
		return nil
	}
	// Group by band, preserving first-seen order.
	bandOrder := make([]float64, 0, 4)
	byBand := make(map[float64][]Measurement)
	var overallMean float64
	for _, m := range ms {
		if _, ok := byBand[m.FreqHz]; !ok {
			bandOrder = append(bandOrder, m.FreqHz)
		}
		byBand[m.FreqHz] = append(byBand[m.FreqHz], m)
		overallMean += m.LevelDB
	}
	overallMean /= float64(len(ms))
	out := make([]float64, 0, len(ms)+len(bandOrder))
	for _, f := range bandOrder {
		group := byBand[f]
		var mean float64
		for _, m := range group {
			mean += m.LevelDB
		}
		mean /= float64(len(group))
		for _, m := range group {
			out = append(out, m.LevelDB-mean)
		}
		out = append(out, mean-overallMean)
	}
	return out
}
