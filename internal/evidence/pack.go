package evidence

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"voiceguard/internal/telemetry"
)

// SchemaVersion is the evidence-pack schema this build reads and writes.
const SchemaVersion = 1

// Member names inside a pack zip.
const (
	ManifestMember  = "manifest.json"
	DecisionsMember = "decisions.jsonl"
	SpansMember     = "spans.jsonl"
	SessionMember   = "session.json"
	ModelsMember    = "models.json"
)

// Redaction modes for session envelopes.
const (
	// RedactNone embeds the raw session request, audio included.
	RedactNone = "none"
	// RedactDigests strips raw audio from the embedded request and
	// carries whole-signal and per-frame content digests instead, so a
	// pack can prove what was heard without containing the voice.
	RedactDigests = "digests"
)

// BuildInfo records the toolchain and module revision that produced a
// pack, so a replayer can tell when a divergence is a build skew rather
// than a data problem.
type BuildInfo struct {
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// Revision is the VCS revision baked into the binary, when known.
	Revision string `json:"revision,omitempty"`
}

// CurrentBuildInfo reports the running binary's build identity.
func CurrentBuildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		bi.Module = info.Main.Path
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				bi.Revision = s.Value
			}
		}
	}
	return bi
}

// Member is one manifest entry: a named pack member and its content
// digest.
type Member struct {
	// Name is the member's path inside the zip.
	Name string `json:"name"`
	// Size is the member's byte length.
	Size int64 `json:"size"`
	// Digest is the member's canonical content digest.
	Digest string `json:"digest"`
}

// Manifest is the pack's integrity root: it lists every member with its
// digest and commits to all of them through a digest chain, so verifying
// the chain plus each member digest proves nothing was added, removed,
// renamed, reordered or altered.
type Manifest struct {
	// SchemaVersion is the pack schema the members follow.
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is the pack build time (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Build identifies the producing binary.
	Build BuildInfo `json:"build"`
	// Members lists every member except the manifest itself, sorted by
	// name.
	Members []Member `json:"members"`
	// RootDigest is the final link of the member digest chain.
	RootDigest string `json:"root_digest"`
}

// StageOutcome is one cascade stage's result inside a pack decision.
type StageOutcome struct {
	// Stage is the stage's metric name ("distance", "soundfield",
	// "loudspeaker", "identity").
	Stage string `json:"stage"`
	// Pass is the stage verdict.
	Pass bool `json:"pass"`
	// Score is the stage score, for humans; ScoreBits is authoritative.
	Score float64 `json:"score"`
	// ScoreBits is the score's IEEE-754 bit pattern (FloatBits), the
	// form replay compares bit-for-bit.
	ScoreBits string `json:"score_bits"`
	// Detail is the stage's human-readable explanation.
	Detail string `json:"detail,omitempty"`
	// ElapsedUS is the stage latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
}

// DecisionRecord is one verdict inside decisions.jsonl.
type DecisionRecord struct {
	// TraceID identifies the attempt; it keys the decision to its span
	// tree in spans.jsonl and its session envelope in session.json.
	TraceID string `json:"trace_id"`
	// Accepted is the cascade verdict.
	Accepted bool `json:"accepted"`
	// FailedStage is the metric name of the first failing stage ("" when
	// accepted).
	FailedStage string `json:"failed_stage,omitempty"`
	// ElapsedUS is the total pipeline latency in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Stages are the per-stage outcomes in cascade order, truncated at
	// the first failure exactly as the cascade decided them.
	Stages []StageOutcome `json:"stages"`
}

// AudioDigest carries the content digests standing in for one redacted
// audio channel.
type AudioDigest struct {
	// Channel names the signal: "voice" or "capture".
	Channel string `json:"channel"`
	// Digest is the whole-signal content digest over the raw float64
	// sample bits.
	Digest string `json:"digest"`
	// Samples is the signal length in samples.
	Samples int `json:"samples"`
	// FrameLen is the per-frame digest window in samples.
	FrameLen int `json:"frame_len,omitempty"`
	// FrameDigests are content digests of consecutive FrameLen-sample
	// windows (last window may be short), letting an auditor localize
	// which part of a signal differs without the raw audio.
	FrameDigests []string `json:"frame_digests,omitempty"`
}

// SessionEnvelope wraps one decision's session inputs.
type SessionEnvelope struct {
	// TraceID keys the envelope to its decision.
	TraceID string `json:"trace_id"`
	// Redaction is the envelope's redaction mode (RedactNone or
	// RedactDigests).
	Redaction string `json:"redaction"`
	// SessionDigest is the content digest of the decoded session — the
	// exact bytes the cascade consumed — and survives redaction.
	SessionDigest string `json:"session_digest,omitempty"`
	// Request is the protocol.VerifyRequest JSON; under RedactDigests
	// its audio fields are emptied.
	Request json.RawMessage `json:"request"`
	// Audio carries the digests replacing raw audio under RedactDigests.
	Audio []AudioDigest `json:"audio,omitempty"`
}

// SessionsDoc is the session.json member.
type SessionsDoc struct {
	// Sessions holds one envelope per packed decision, in decision
	// order.
	Sessions []SessionEnvelope `json:"sessions"`
}

// EnrollProvenance is the recipe for one enrolled user in a
// deterministically grown system.
type EnrollProvenance struct {
	// User is the enrolled identity.
	User string `json:"user"`
	// Seed seeds the user's voice profile and synthesizer.
	Seed int64 `json:"seed"`
	// Passphrase is the digit string spoken at enrollment.
	Passphrase string `json:"passphrase"`
	// Utterances is how many enrollment utterances were recorded.
	Utterances int `json:"utterances"`
}

// ASVProvenance is the recipe for the trained speaker-verification
// backend.
type ASVProvenance struct {
	// Seed seeds the background roster and training.
	Seed int64 `json:"seed"`
	// Roster is the background speaker count.
	Roster int `json:"roster"`
	// Sessions is the per-speaker background session count.
	Sessions int `json:"sessions"`
	// Utterances is the per-session utterance count.
	Utterances int `json:"utterances"`
	// Digits is the per-utterance digit count.
	Digits int `json:"digits"`
	// Enroll lists the enrolled users in enrollment order.
	Enroll []EnrollProvenance `json:"enroll,omitempty"`
	// FastTopC, when positive, records that the producer served with the
	// compiled top-C fast scoring path at this shortlist width; rebuild
	// re-enables it so replayed fast-path scores reproduce bit-for-bit.
	// Zero — the default, and the value in packs that predate the fast
	// path — keeps the exact path.
	FastTopC int `json:"fast_top_c,omitempty"`
}

// Provenance records how the producing system was constructed, in enough
// detail for `pack replay` to rebuild a bit-identical one.
type Provenance struct {
	// Generator names the producer: "demo", "server" or "test".
	Generator string `json:"generator"`
	// FieldSeed seeds the sound-field SVM training.
	FieldSeed int64 `json:"field_seed"`
	// ASV is the speaker-verification recipe; nil when the identity
	// stage was disabled.
	ASV *ASVProvenance `json:"asv,omitempty"`
}

// ModelsDoc is the models.json member: the content digests of every
// model the cascade consulted, plus the recipe to rebuild them.
type ModelsDoc struct {
	// Digests maps model key ("asv/ubm", "soundfield/band/90", ...) to
	// canonical content digest.
	Digests map[string]string `json:"digests"`
	// Provenance is the system construction recipe, when known.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Pack is a parsed evidence pack.
type Pack struct {
	// Manifest is the parsed manifest.json.
	Manifest Manifest
	// Decisions are the parsed decisions.jsonl records, in file order.
	Decisions []DecisionRecord
	// Traces are the parsed spans.jsonl span trees, in file order.
	Traces []*telemetry.TraceRecord
	// Sessions is the parsed session.json.
	Sessions SessionsDoc
	// Models is the parsed models.json.
	Models ModelsDoc
	// Raw holds every member's raw bytes by name, manifest included —
	// what Verify re-hashes.
	Raw map[string][]byte
}

// Decision returns the pack's decision for the given trace ID and
// whether it exists.
func (p *Pack) Decision(traceID string) (DecisionRecord, bool) {
	for _, d := range p.Decisions {
		if d.TraceID == traceID {
			return d, true
		}
	}
	return DecisionRecord{}, false
}

// Trace returns the pack's span tree for the given trace ID, or nil.
func (p *Pack) Trace(traceID string) *telemetry.TraceRecord {
	for _, t := range p.Traces {
		if t.TraceID == traceID {
			return t
		}
	}
	return nil
}

// Session returns the pack's session envelope for the given trace ID and
// whether it exists.
func (p *Pack) Session(traceID string) (SessionEnvelope, bool) {
	for _, s := range p.Sessions.Sessions {
		if s.TraceID == traceID {
			return s, true
		}
	}
	return SessionEnvelope{}, false
}

// Builder accumulates decisions into a pack.
type Builder struct {
	decisions []DecisionRecord
	traces    []*telemetry.TraceRecord
	sessions  []SessionEnvelope
	models    ModelsDoc
	now       time.Time
}

// NewBuilder returns an empty pack builder stamped with the given build
// time.
func NewBuilder(now time.Time) *Builder {
	return &Builder{now: now.UTC(), models: ModelsDoc{Digests: map[string]string{}}}
}

// AddDecision appends one decision with its span tree and session
// envelope. Trace may be nil when the recorder evicted it; the envelope
// may be zero when the session was not retained.
func (b *Builder) AddDecision(d DecisionRecord, trace *telemetry.TraceRecord, env SessionEnvelope) {
	b.decisions = append(b.decisions, d)
	if trace != nil {
		b.traces = append(b.traces, trace)
	}
	if env.TraceID != "" {
		b.sessions = append(b.sessions, env)
	}
}

// SetModels records the model digest set and construction provenance.
func (b *Builder) SetModels(digests map[string]string, prov *Provenance) {
	b.models = ModelsDoc{Digests: digests, Provenance: prov}
	if b.models.Digests == nil {
		b.models.Digests = map[string]string{}
	}
}

// Members renders the pack members (manifest excluded) as raw bytes.
func (b *Builder) Members() (map[string][]byte, error) {
	var decBuf bytes.Buffer
	enc := json.NewEncoder(&decBuf)
	for _, d := range b.decisions {
		if err := enc.Encode(d); err != nil {
			return nil, fmt.Errorf("evidence: encoding decision %s: %w", d.TraceID, err)
		}
	}
	var spanBuf bytes.Buffer
	if err := telemetry.WriteJSONL(&spanBuf, b.traces); err != nil {
		return nil, fmt.Errorf("evidence: encoding spans: %w", err)
	}
	sessRaw, err := json.MarshalIndent(SessionsDoc{Sessions: b.sessions}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("evidence: encoding sessions: %w", err)
	}
	modelsRaw, err := json.MarshalIndent(b.models, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("evidence: encoding models: %w", err)
	}
	return map[string][]byte{
		DecisionsMember: decBuf.Bytes(),
		SpansMember:     spanBuf.Bytes(),
		SessionMember:   append(sessRaw, '\n'),
		ModelsMember:    append(modelsRaw, '\n'),
	}, nil
}

// BuildManifest digests the members and chains them into a manifest.
// Members are chained sorted by name so the root digest is independent of
// map iteration order.
func BuildManifest(members map[string][]byte, now time.Time) Manifest {
	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Strings(names)
	m := Manifest{
		SchemaVersion: SchemaVersion,
		CreatedAt:     now.UTC(),
		Build:         CurrentBuildInfo(),
	}
	chain := ChainSeed()
	for _, name := range names {
		data := members[name]
		d := Digest(data)
		m.Members = append(m.Members, Member{Name: name, Size: int64(len(data)), Digest: d})
		chain = ChainDigest(chain, name, d)
	}
	m.RootDigest = chain
	return m
}

// WriteZip assembles the builder's members into an evidence-pack zip.
func (b *Builder) WriteZip(w io.Writer) error {
	members, err := b.Members()
	if err != nil {
		return err
	}
	manifest := BuildManifest(members, b.now)
	return WriteZipMembers(w, manifest, members)
}

// WriteZipMembers writes a pack zip from an explicit manifest and member
// set, without recomputing digests — the low-level form tamper tests use
// to produce packs whose members disagree with their manifest. Entries
// carry the manifest's timestamp so identical content yields identical
// zip bytes.
func WriteZipMembers(w io.Writer, manifest Manifest, members map[string][]byte) error {
	manifestRaw, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("evidence: encoding manifest: %w", err)
	}
	manifestRaw = append(manifestRaw, '\n')

	names := make([]string, 0, len(members))
	for name := range members {
		names = append(names, name)
	}
	sort.Strings(names)

	zw := zip.NewWriter(w)
	write := func(name string, data []byte) error {
		fw, err := zw.CreateHeader(&zip.FileHeader{
			Name:     name,
			Method:   zip.Deflate,
			Modified: manifest.CreatedAt,
		})
		if err != nil {
			return fmt.Errorf("evidence: creating zip member %s: %w", name, err)
		}
		if _, err := fw.Write(data); err != nil {
			return fmt.Errorf("evidence: writing zip member %s: %w", name, err)
		}
		return nil
	}
	if err := write(ManifestMember, manifestRaw); err != nil {
		return err
	}
	for _, name := range names {
		if err := write(name, members[name]); err != nil {
			return err
		}
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("evidence: closing zip: %w", err)
	}
	return nil
}

// ReadZip parses an evidence pack from a zip. Unknown members are kept in
// Raw (and covered by manifest verification) but not parsed.
func ReadZip(r io.ReaderAt, size int64) (*Pack, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("evidence: opening pack zip: %w", err)
	}
	p := &Pack{Raw: map[string][]byte{}}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("evidence: opening member %s: %w", f.Name, err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			return nil, fmt.Errorf("evidence: reading member %s: %w", f.Name, err)
		}
		p.Raw[f.Name] = data
	}

	manifestRaw, ok := p.Raw[ManifestMember]
	if !ok {
		return nil, fmt.Errorf("evidence: pack has no %s", ManifestMember)
	}
	if err := json.Unmarshal(manifestRaw, &p.Manifest); err != nil {
		return nil, fmt.Errorf("evidence: parsing %s: %w", ManifestMember, err)
	}

	if raw, ok := p.Raw[DecisionsMember]; ok {
		if err := decodeJSONL(raw, &p.Decisions); err != nil {
			return nil, fmt.Errorf("evidence: parsing %s: %w", DecisionsMember, err)
		}
	}
	if raw, ok := p.Raw[SpansMember]; ok {
		traces, err := telemetry.ReadJSONL(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("evidence: parsing %s: %w", SpansMember, err)
		}
		p.Traces = traces
	}
	if raw, ok := p.Raw[SessionMember]; ok {
		if err := json.Unmarshal(raw, &p.Sessions); err != nil {
			return nil, fmt.Errorf("evidence: parsing %s: %w", SessionMember, err)
		}
	}
	if raw, ok := p.Raw[ModelsMember]; ok {
		if err := json.Unmarshal(raw, &p.Models); err != nil {
			return nil, fmt.Errorf("evidence: parsing %s: %w", ModelsMember, err)
		}
	}
	return p, nil
}

// ReadBytes parses an evidence pack from in-memory zip bytes.
func ReadBytes(data []byte) (*Pack, error) {
	return ReadZip(bytes.NewReader(data), int64(len(data)))
}

// ReadFile parses an evidence pack from a zip file on disk.
func ReadFile(path string) (*Pack, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("evidence: reading pack: %w", err)
	}
	return ReadBytes(data)
}

// decodeJSONL parses newline-delimited JSON into *out (a pointer to a
// slice of DecisionRecord).
func decodeJSONL(raw []byte, out *[]DecisionRecord) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var d DecisionRecord
		if err := dec.Decode(&d); err != nil {
			return err
		}
		*out = append(*out, d)
	}
	return nil
}
