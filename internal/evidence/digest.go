// Package evidence makes retained decision traces portable and
// verifiable: it serializes one decision (or a set of decisions) from the
// flight recorder into a self-contained, digest-chained evidence pack — a
// zip holding the verdicts, the full evidence-carrying span trees, the
// raw (or privacy-redacted) session inputs and the content digests of
// every model the cascade consulted. A pack can be verified offline
// member-by-member against its manifest chain, diffed stage-by-stage
// against another pack, and replayed through a rebuilt pipeline to
// reproduce the original verdict bit-for-bit — turning a production
// incident into a regression test.
//
// The package is the single normalizing path for content digests in the
// tree: everything that hashes model bytes, session bytes or pack members
// goes through Digest / NewDigester, and the digesthex analyzer in
// voiceguard-lint flags raw hex-encoding of hash sums anywhere else.
package evidence

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"strconv"
)

// DigestPrefix tags every canonical content digest with its algorithm, so
// a future algorithm migration can coexist with sha256 packs.
const DigestPrefix = "sha256:"

// digestHexLen is the hex length of a sha256 sum.
const digestHexLen = 2 * sha256.Size

// Digest returns the canonical content digest of data:
// "sha256:" + 64 lowercase hex characters.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return DigestPrefix + hex.EncodeToString(sum[:])
}

// Digester streams data into a canonical content digest — the io.Writer
// form of Digest for members too large to buffer.
type Digester struct {
	h hash.Hash
	n int64
}

// NewDigester returns an empty streaming digester.
func NewDigester() *Digester {
	return &Digester{h: sha256.New()}
}

// Write implements io.Writer.
func (d *Digester) Write(p []byte) (int, error) {
	n, err := d.h.Write(p)
	d.n += int64(n)
	return n, err
}

// Size returns the number of bytes written so far.
func (d *Digester) Size() int64 { return d.n }

// Sum returns the canonical digest of everything written so far.
func (d *Digester) Sum() string {
	return DigestPrefix + hex.EncodeToString(d.h.Sum(nil))
}

// DigestReader digests r to exhaustion, returning the canonical digest
// and the byte count.
func DigestReader(r io.Reader) (string, int64, error) {
	d := NewDigester()
	if _, err := io.Copy(d, r); err != nil {
		return "", 0, fmt.Errorf("evidence: digesting stream: %w", err)
	}
	return d.Sum(), d.Size(), nil
}

// ValidDigest reports whether s is a well-formed canonical digest.
func ValidDigest(s string) bool {
	if len(s) != len(DigestPrefix)+digestHexLen || s[:len(DigestPrefix)] != DigestPrefix {
		return false
	}
	for i := len(DigestPrefix); i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ChainDigest advances a manifest digest chain by one member: the new
// link commits to the previous link, the member's name and the member's
// own content digest, so reordering, renaming or replacing any member
// changes every later link and the root.
func ChainDigest(prev, name, memberDigest string) string {
	return Digest([]byte(prev + "\n" + name + "\n" + memberDigest + "\n"))
}

// ChainSeed is the first link of every manifest chain: the digest of the
// empty byte string, so an empty pack still has a well-defined root.
func ChainSeed() string { return Digest(nil) }

// FloatBits renders a float64 as the 16-hex IEEE-754 bit pattern — the
// lossless form pack decisions carry next to the human-readable score so
// replay equality is bit-exact, not printf-exact.
func FloatBits(f float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(f))
}

// BitsFloat parses a FloatBits rendering back into the float64.
func BitsFloat(s string) (float64, error) {
	bits, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("evidence: parsing float bits %q: %w", s, err)
	}
	return math.Float64frombits(bits), nil
}
