package evidence

import (
	"fmt"
	"sort"
)

// DiffPacks compares two packs stage-by-stage and returns human-readable
// difference lines: verdict and failed-stage changes, per-stage pass and
// bit-level score divergences, member digest changes, and model digest
// changes. Decisions are matched by trace ID when both packs share it,
// falling back to position for single-decision packs with regenerated
// IDs. An empty result means the packs agree on everything compared.
func DiffPacks(a, b *Pack) []string {
	var out []string

	out = append(out, diffMembers(a, b)...)
	out = append(out, diffModels(a, b)...)

	pairs := pairDecisions(a, b)
	for _, pr := range pairs {
		switch {
		case pr.a == nil:
			out = append(out, fmt.Sprintf("decision %s: only in second pack", pr.b.TraceID))
		case pr.b == nil:
			out = append(out, fmt.Sprintf("decision %s: only in first pack", pr.a.TraceID))
		default:
			out = append(out, diffDecision(*pr.a, *pr.b)...)
		}
	}
	return out
}

type decisionPair struct {
	a, b *DecisionRecord
}

// pairDecisions matches decisions across packs by trace ID, falling back
// to position when neither side's ID appears in the other pack (replayed
// packs carry fresh trace IDs).
func pairDecisions(a, b *Pack) []decisionPair {
	bByID := make(map[string]int, len(b.Decisions))
	for i, d := range b.Decisions {
		bByID[d.TraceID] = i
	}
	anyShared := false
	for _, d := range a.Decisions {
		if _, ok := bByID[d.TraceID]; ok {
			anyShared = true
			break
		}
	}

	var pairs []decisionPair
	if !anyShared {
		n := len(a.Decisions)
		if len(b.Decisions) > n {
			n = len(b.Decisions)
		}
		for i := 0; i < n; i++ {
			var pr decisionPair
			if i < len(a.Decisions) {
				pr.a = &a.Decisions[i]
			}
			if i < len(b.Decisions) {
				pr.b = &b.Decisions[i]
			}
			pairs = append(pairs, pr)
		}
		return pairs
	}

	usedB := make(map[int]bool, len(b.Decisions))
	for i := range a.Decisions {
		pr := decisionPair{a: &a.Decisions[i]}
		if j, ok := bByID[a.Decisions[i].TraceID]; ok {
			pr.b = &b.Decisions[j]
			usedB[j] = true
		}
		pairs = append(pairs, pr)
	}
	for j := range b.Decisions {
		if !usedB[j] {
			pairs = append(pairs, decisionPair{b: &b.Decisions[j]})
		}
	}
	return pairs
}

// diffDecision compares one matched decision pair stage-by-stage.
func diffDecision(a, b DecisionRecord) []string {
	var out []string
	id := a.TraceID
	if b.TraceID != id {
		id = a.TraceID + " vs " + b.TraceID
	}
	if a.Accepted != b.Accepted {
		out = append(out, fmt.Sprintf("decision %s: verdict accepted=%v vs accepted=%v",
			id, a.Accepted, b.Accepted))
	}
	if a.FailedStage != b.FailedStage {
		out = append(out, fmt.Sprintf("decision %s: failed stage %q vs %q",
			id, a.FailedStage, b.FailedStage))
	}
	if len(a.Stages) != len(b.Stages) {
		out = append(out, fmt.Sprintf("decision %s: %d stage results vs %d",
			id, len(a.Stages), len(b.Stages)))
	}
	n := len(a.Stages)
	if len(b.Stages) < n {
		n = len(b.Stages)
	}
	for i := 0; i < n; i++ {
		sa, sb := a.Stages[i], b.Stages[i]
		if sa.Stage != sb.Stage {
			out = append(out, fmt.Sprintf("decision %s: stage %d is %q vs %q",
				id, i+1, sa.Stage, sb.Stage))
			continue
		}
		if sa.Pass != sb.Pass {
			out = append(out, fmt.Sprintf("decision %s: stage %s pass=%v vs pass=%v",
				id, sa.Stage, sa.Pass, sb.Pass))
		}
		if sa.ScoreBits != sb.ScoreBits {
			out = append(out, fmt.Sprintf("decision %s: stage %s score %v (bits %s) vs %v (bits %s)",
				id, sa.Stage, sa.Score, sa.ScoreBits, sb.Score, sb.ScoreBits))
		}
	}
	return out
}

// diffMembers reports member-set and member-digest differences.
func diffMembers(a, b *Pack) []string {
	var out []string
	aMem := memberDigests(a)
	bMem := memberDigests(b)
	for _, name := range sortedKeys(aMem) {
		db, ok := bMem[name]
		if !ok {
			out = append(out, fmt.Sprintf("member %s: only in first pack", name))
			continue
		}
		if aMem[name] != db {
			out = append(out, fmt.Sprintf("member %s: digest %s vs %s", name, aMem[name], db))
		}
	}
	for _, name := range sortedKeys(bMem) {
		if _, ok := aMem[name]; !ok {
			out = append(out, fmt.Sprintf("member %s: only in second pack", name))
		}
	}
	return out
}

func memberDigests(p *Pack) map[string]string {
	out := make(map[string]string, len(p.Manifest.Members))
	for _, m := range p.Manifest.Members {
		out[m.Name] = m.Digest
	}
	return out
}

// diffModels reports model digest differences.
func diffModels(a, b *Pack) []string {
	var out []string
	for _, k := range sortedKeys(a.Models.Digests) {
		db, ok := b.Models.Digests[k]
		if !ok {
			out = append(out, fmt.Sprintf("model %s: only in first pack", k))
			continue
		}
		if a.Models.Digests[k] != db {
			out = append(out, fmt.Sprintf("model %s: digest %s vs %s", k, a.Models.Digests[k], db))
		}
	}
	for _, k := range sortedKeys(b.Models.Digests) {
		if _, ok := a.Models.Digests[k]; !ok {
			out = append(out, fmt.Sprintf("model %s: only in second pack", k))
		}
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
