package evidence

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/telemetry"
)

func TestDigestHelpers(t *testing.T) {
	d := Digest([]byte("voiceguard"))
	if !ValidDigest(d) {
		t.Fatalf("Digest produced malformed digest %q", d)
	}
	if d2 := Digest([]byte("voiceguard")); d2 != d {
		t.Fatalf("Digest not deterministic: %s vs %s", d, d2)
	}
	if Digest([]byte("other")) == d {
		t.Fatal("distinct inputs collided")
	}

	dg := NewDigester()
	if _, err := dg.Write([]byte("voice")); err != nil {
		t.Fatal(err)
	}
	if _, err := dg.Write([]byte("guard")); err != nil {
		t.Fatal(err)
	}
	if dg.Sum() != d {
		t.Fatalf("streaming digest %s != one-shot %s", dg.Sum(), d)
	}
	if dg.Size() != int64(len("voiceguard")) {
		t.Fatalf("Size() = %d", dg.Size())
	}

	rd, n, err := DigestReader(strings.NewReader("voiceguard"))
	if err != nil {
		t.Fatal(err)
	}
	if rd != d || n != 10 {
		t.Fatalf("DigestReader = %s, %d", rd, n)
	}

	for _, bad := range []string{"", "sha256:", "sha256:zz", d[:len(d)-1], "md5:" + d[7:], strings.ToUpper(d)} {
		if ValidDigest(bad) {
			t.Errorf("ValidDigest(%q) = true", bad)
		}
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	for _, f := range []float64{0, -0.0, 1.5, -3.25e-17, math.Pi, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		bits := FloatBits(f)
		if len(bits) != 16 {
			t.Fatalf("FloatBits(%v) = %q, want 16 hex chars", f, bits)
		}
		got, err := BitsFloat(bits)
		if err != nil {
			t.Fatalf("BitsFloat(%q): %v", bits, err)
		}
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("round trip %v -> %q -> %v not bit-identical", f, bits, got)
		}
	}
	nan := FloatBits(math.NaN())
	back, err := BitsFloat(nan)
	if err != nil || !math.IsNaN(back) {
		t.Fatalf("NaN round trip: %v, %v", back, err)
	}
	if _, err := BitsFloat("not-hex"); err == nil {
		t.Fatal("BitsFloat accepted garbage")
	}
}

func TestChainDigestOrderSensitive(t *testing.T) {
	a := ChainDigest(ChainSeed(), "a", Digest([]byte("1")))
	ab := ChainDigest(a, "b", Digest([]byte("2")))
	b := ChainDigest(ChainSeed(), "b", Digest([]byte("2")))
	ba := ChainDigest(b, "a", Digest([]byte("1")))
	if ab == ba {
		t.Fatal("chain digest insensitive to member order")
	}
	renamed := ChainDigest(a, "c", Digest([]byte("2")))
	if renamed == ab {
		t.Fatal("chain digest insensitive to member name")
	}
}

// testTrace builds a minimal consistent trace for the given decision.
func testTrace(d DecisionRecord) *telemetry.TraceRecord {
	tr := &telemetry.TraceRecord{
		TraceID:     d.TraceID,
		Start:       time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Accepted:    d.Accepted,
		FailedStage: d.FailedStage,
		ElapsedUS:   d.ElapsedUS,
		Spans: []telemetry.SpanRecord{
			{SpanID: "0000000000000001", Name: "verify"},
		},
	}
	for i, st := range d.Stages {
		if strings.HasPrefix(st.Detail, skippedDetailPrefix) {
			continue
		}
		tr.Spans = append(tr.Spans, telemetry.SpanRecord{
			SpanID:   FloatBits(float64(i + 2))[:16],
			ParentID: "0000000000000001",
			Name:     telemetry.StageSpanName + st.Stage,
			Attrs: []telemetry.Attr{
				{Key: "pass", Kind: telemetry.KindBool, Bool: st.Pass},
				{Key: "score", Kind: telemetry.KindFloat, Float: st.Score},
				{Key: "threshold_test", Kind: telemetry.KindFloat, Float: 1.0},
			},
		})
	}
	return tr
}

func testDecision(id string, accepted bool) DecisionRecord {
	d := DecisionRecord{TraceID: id, Accepted: accepted, ElapsedUS: 1234}
	scores := []float64{0.015, 0.42, 140.0, -1.8}
	stages := []string{"distance", "soundfield", "loudspeaker", "identity"}
	for i, name := range stages {
		pass := true
		if !accepted && i == len(stages)-1 {
			pass = false
			d.FailedStage = name
		}
		d.Stages = append(d.Stages, StageOutcome{
			Stage:     name,
			Pass:      pass,
			Score:     scores[i],
			ScoreBits: FloatBits(scores[i]),
			Detail:    "test",
			ElapsedUS: 10,
		})
	}
	return d
}

func buildTestPack(t *testing.T, decisions ...DecisionRecord) []byte {
	t.Helper()
	b := NewBuilder(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	for _, d := range decisions {
		env := SessionEnvelope{
			TraceID:   d.TraceID,
			Redaction: RedactNone,
			Request:   json.RawMessage(`{"claimed_user":"victim"}`),
		}
		b.AddDecision(d, testTrace(d), env)
	}
	b.SetModels(map[string]string{
		"asv/ubm":      Digest([]byte("ubm")),
		"asv/user/bob": Digest([]byte("bob")),
	}, &Provenance{Generator: "test", FieldSeed: 7})
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatalf("WriteZip: %v", err)
	}
	return buf.Bytes()
}

func TestPackRoundTripAndVerify(t *testing.T) {
	raw := buildTestPack(t, testDecision("t-accept", true), testDecision("t-reject", false))
	p, err := ReadBytes(raw)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if probs := Verify(p); len(probs) != 0 {
		for _, pr := range probs {
			t.Errorf("unexpected problem: %s", pr)
		}
		t.Fatal("fresh pack failed verification")
	}
	if len(p.Decisions) != 2 || len(p.Traces) != 2 || len(p.Sessions.Sessions) != 2 {
		t.Fatalf("parsed counts: %d decisions, %d traces, %d sessions",
			len(p.Decisions), len(p.Traces), len(p.Sessions.Sessions))
	}
	d, ok := p.Decision("t-reject")
	if !ok || d.FailedStage != "identity" {
		t.Fatalf("Decision lookup: ok=%v failed=%q", ok, d.FailedStage)
	}
	if p.Trace("t-accept") == nil {
		t.Fatal("Trace lookup failed")
	}
	if _, ok := p.Session("t-accept"); !ok {
		t.Fatal("Session lookup failed")
	}
	if p.Models.Provenance == nil || p.Models.Provenance.Generator != "test" {
		t.Fatal("provenance lost in round trip")
	}
	if !ValidDigest(p.Manifest.RootDigest) {
		t.Fatalf("malformed root digest %q", p.Manifest.RootDigest)
	}
}

func TestPackDeterministicBytes(t *testing.T) {
	a := buildTestPack(t, testDecision("t-1", true))
	b := buildTestPack(t, testDecision("t-1", true))
	if !bytes.Equal(a, b) {
		t.Fatal("identical builder inputs produced different pack bytes")
	}
}

// TestVerifyDetectsTamper flips one byte of each member in turn and
// asserts verification fails every time.
func TestVerifyDetectsTamper(t *testing.T) {
	raw := buildTestPack(t, testDecision("t-1", false))
	clean, err := ReadBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{DecisionsMember, SpansMember, SessionMember, ModelsMember} {
		members := map[string][]byte{}
		for name, data := range clean.Raw {
			if name == ManifestMember {
				continue
			}
			cp := append([]byte(nil), data...)
			if name == member {
				// Flip a byte inside a value, keeping the JSON parseable.
				i := bytes.IndexByte(cp, 't')
				cp[i] = 'u'
			}
			members[name] = cp
		}
		var buf bytes.Buffer
		if err := WriteZipMembers(&buf, clean.Manifest, members); err != nil {
			t.Fatal(err)
		}
		p, err := ReadBytes(buf.Bytes())
		if err != nil {
			// Some flips corrupt JSON outright; that is detection too.
			continue
		}
		probs := Verify(p)
		if len(probs) == 0 {
			t.Errorf("tampering %s went undetected", member)
		}
		found := false
		for _, pr := range probs {
			if pr.Member == member && strings.Contains(pr.Msg, "digest mismatch") {
				found = true
			}
		}
		if !found {
			t.Errorf("tampering %s: no digest-mismatch problem in %v", member, probs)
		}
	}
}

func TestVerifyDetectsMissingSpanEvidence(t *testing.T) {
	d := testDecision("t-1", true)
	b := NewBuilder(time.Unix(0, 0))
	tr := testTrace(d)
	// Drop the identity stage's span: verification must notice the
	// decision claims a stage the trace has no evidence for.
	tr.Spans = tr.Spans[:len(tr.Spans)-1]
	b.AddDecision(d, tr, SessionEnvelope{TraceID: d.TraceID, Redaction: RedactNone, Request: json.RawMessage(`{}`)})
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	probs := Verify(p)
	found := false
	for _, pr := range probs {
		if strings.Contains(pr.Msg, "no stage span") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing stage span not reported; problems: %v", probs)
	}
}

func TestVerifyAllowsSkippedStages(t *testing.T) {
	d := testDecision("t-1", false)
	// Mark the failed stage's successor-style detail as abandoned work.
	d.Stages[3].Detail = skippedDetailPrefix + "earlier stage failed"
	b := NewBuilder(time.Unix(0, 0))
	b.AddDecision(d, testTrace(d), SessionEnvelope{TraceID: d.TraceID, Redaction: RedactNone, Request: json.RawMessage(`{}`)})
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range Verify(p) {
		if strings.Contains(pr.Msg, "stage identity") {
			t.Fatalf("skipped stage flagged: %s", pr)
		}
	}
}

func TestVerifyRejectsBadRedaction(t *testing.T) {
	d := testDecision("t-1", true)
	b := NewBuilder(time.Unix(0, 0))
	b.AddDecision(d, testTrace(d), SessionEnvelope{
		TraceID:   d.TraceID,
		Redaction: "shredded",
		Request:   json.RawMessage(`{}`),
	})
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range Verify(p) {
		if strings.Contains(pr.Msg, "unknown redaction mode") {
			found = true
		}
	}
	if !found {
		t.Fatal("unknown redaction mode not reported")
	}
}

func TestDiffPacks(t *testing.T) {
	a, err := ReadBytes(buildTestPack(t, testDecision("t-1", true)))
	if err != nil {
		t.Fatal(err)
	}
	same, err := ReadBytes(buildTestPack(t, testDecision("t-1", true)))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffPacks(a, same); len(diffs) != 0 {
		t.Fatalf("identical packs diff: %v", diffs)
	}

	changed := testDecision("t-1", false)
	bp, err := ReadBytes(buildTestPack(t, changed))
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffPacks(a, bp)
	if len(diffs) == 0 {
		t.Fatal("divergent packs reported identical")
	}
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"verdict", "failed stage", "pass="} {
		if !strings.Contains(joined, want) {
			t.Errorf("diff output missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffPacksPositionalFallback(t *testing.T) {
	// Same decision under different trace IDs: replayed packs carry
	// fresh IDs, so the differ must fall back to positional matching.
	a, err := ReadBytes(buildTestPack(t, testDecision("t-original", true)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBytes(buildTestPack(t, testDecision("t-replayed", true)))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range DiffPacks(a, b) {
		if strings.Contains(d, "only in") {
			t.Fatalf("positional fallback not applied: %s", d)
		}
	}
}

func TestScoreBitsMismatchDetected(t *testing.T) {
	d := testDecision("t-1", true)
	d.Stages[0].ScoreBits = FloatBits(99.0) // lie about the bits
	b := NewBuilder(time.Unix(0, 0))
	b.AddDecision(d, testTrace(d), SessionEnvelope{TraceID: d.TraceID, Redaction: RedactNone, Request: json.RawMessage(`{}`)})
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pr := range Verify(p) {
		if strings.Contains(pr.Msg, "score_bits") {
			found = true
		}
	}
	if !found {
		t.Fatal("score_bits inconsistency not reported")
	}
}
