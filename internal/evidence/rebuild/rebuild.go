// Package rebuild reconstructs a verification pipeline from an evidence
// pack's provenance and replays the pack's sessions through it. Every
// training and enrollment path in the tree is seed-deterministic and the
// cascade's parallel fan-out is bit-identical at any worker count, so a
// system rebuilt from the same recipe digests to the same models and
// reproduces the same verdicts bit-for-bit — which is exactly what
// Replay asserts, turning an exported production incident into an
// offline regression test.
//
// The same construction path is shared by cmd/voiceguard-server,
// cmd/voiceguard-trace's demo/pack subcommands and the e2e tests, so a
// pack's provenance is the recipe the producer actually ran, not a
// parallel reimplementation that could drift.
package rebuild

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"voiceguard/internal/audio"
	"voiceguard/internal/core"
	"voiceguard/internal/evidence"
	"voiceguard/internal/protocol"
	"voiceguard/internal/speech"
)

// Profile derives a user's synthetic voice profile from an enrollment
// seed: the first draws of a fresh seeded source, matching Synthesizer's
// consumption of the same source during enrollment.
func Profile(user string, seed int64) speech.Profile {
	return speech.RandomProfile(user, rand.New(rand.NewSource(seed)))
}

// TrainASV trains the speaker-verification back-end from its provenance
// recipe and enrolls every listed user. A nil recipe returns nil (the
// identity stage was disabled).
func TrainASV(p *evidence.ASVProvenance) (*core.SpeakerVerifier, error) {
	if p == nil {
		return nil, nil
	}
	roster := speech.NewRoster(p.Roster, p.Seed+100)
	utts, err := roster.Generate(speech.CorpusConfig{
		Sessions:             p.Sessions,
		UtterancesPerSession: p.Utterances,
		Digits:               p.Digits,
	})
	if err != nil {
		return nil, fmt.Errorf("rebuild: generating background corpus: %w", err)
	}
	background := make(map[string][][]*audio.Signal)
	for spk, us := range speech.BySpeaker(utts) {
		perSession := map[int][]*audio.Signal{}
		maxSess := 0
		for _, u := range us {
			perSession[u.Session] = append(perSession[u.Session], u.Audio)
			if u.Session > maxSess {
				maxSess = u.Session
			}
		}
		for s := 0; s <= maxSess; s++ {
			background[spk] = append(background[spk], perSession[s])
		}
	}
	verifier, err := core.TrainSpeakerVerifier(background, core.SpeakerVerifierConfig{Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("rebuild: training ASV: %w", err)
	}
	for _, e := range p.Enroll {
		if err := Enroll(verifier, e); err != nil {
			return nil, err
		}
	}
	if p.FastTopC > 0 {
		// The producer served with the compiled shortlist path; rebuild
		// with the same width so replayed scores (and the asv/fast model
		// digest) reproduce bit-for-bit.
		if err := verifier.EnableFastPath(core.FastPathConfig{TopC: p.FastTopC}); err != nil {
			return nil, fmt.Errorf("rebuild: enabling fast ASV path: %w", err)
		}
	}
	return verifier, nil
}

// Enroll registers one user from an enrollment recipe. One seeded source
// drives both the profile draw and the synthesizer, so the recipe alone
// pins the enrollment audio bit-for-bit.
func Enroll(v *core.SpeakerVerifier, e evidence.EnrollProvenance) error {
	if e.Utterances <= 0 {
		return fmt.Errorf("rebuild: enroll recipe for %q has no utterances", e.User)
	}
	rng := rand.New(rand.NewSource(e.Seed))
	profile := speech.RandomProfile(e.User, rng)
	synth, err := speech.NewSynthesizer(profile, rng)
	if err != nil {
		return fmt.Errorf("rebuild: building synthesizer for %q: %w", e.User, err)
	}
	var session []*audio.Signal
	for k := 0; k < e.Utterances; k++ {
		utt, err := synth.SayDigits(e.Passphrase)
		if err != nil {
			return fmt.Errorf("rebuild: synthesizing enrollment for %q: %w", e.User, err)
		}
		session = append(session, utt)
	}
	if err := v.Enroll(e.User, [][]*audio.Signal{session}); err != nil {
		return fmt.Errorf("rebuild: enrolling %q: %w", e.User, err)
	}
	return nil
}

// System constructs the full pipeline a provenance recipe describes:
// the anti-spoofing stages from the field seed, plus the trained and
// enrolled identity stage when the recipe carries one.
func System(p evidence.Provenance) (*core.System, error) {
	sys, err := core.BuildSystem(core.SystemConfig{FieldSeed: p.FieldSeed})
	if err != nil {
		return nil, fmt.Errorf("rebuild: building pipeline: %w", err)
	}
	verifier, err := TrainASV(p.ASV)
	if err != nil {
		return nil, err
	}
	if verifier != nil {
		sys.AttachIdentity(verifier)
	}
	return sys, nil
}

// ErrNoProvenance is returned when a pack carries no construction recipe.
var ErrNoProvenance = errors.New("rebuild: pack carries no provenance; cannot reconstruct the system")

// SystemFromPack rebuilds the producing system from a pack's embedded
// provenance.
func SystemFromPack(p *evidence.Pack) (*core.System, error) {
	if p.Models.Provenance == nil {
		return nil, ErrNoProvenance
	}
	return System(*p.Models.Provenance)
}

// CheckModels asserts a rebuilt system's model digests exactly match the
// pack's models.json — the gate replay runs before trusting any
// reproduced verdict. A mismatch means the rebuilt models are not the
// ones the original verdict consulted, and replay divergence would be
// meaningless.
func CheckModels(p *evidence.Pack, sys *core.System) error {
	got, err := sys.ModelDigests()
	if err != nil {
		return fmt.Errorf("rebuild: digesting rebuilt models: %w", err)
	}
	var diffs []string
	keys := make([]string, 0, len(p.Models.Digests))
	for k := range p.Models.Digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		gd, ok := got[k]
		switch {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("%s: in pack but not in rebuilt system", k))
		case gd != p.Models.Digests[k]:
			diffs = append(diffs, fmt.Sprintf("%s: pack %s, rebuilt %s", k, p.Models.Digests[k], gd))
		}
	}
	for k := range got {
		if _, ok := p.Models.Digests[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: in rebuilt system but not in pack", k))
		}
	}
	if len(diffs) > 0 {
		return fmt.Errorf("rebuild: model digests diverge:\n  %s", joinLines(diffs))
	}
	return nil
}

// ReplayResult is one session's replay outcome.
type ReplayResult struct {
	// TraceID is the original decision's trace ID.
	TraceID string
	// Match reports whether the replayed decision is bit-identical to
	// the packed one (verdict, failed stage, per-stage pass bits and
	// score bits).
	Match bool
	// Diffs lists every divergence when Match is false.
	Diffs []string
	// Replayed is the reproduced decision in pack record form.
	Replayed evidence.DecisionRecord
}

// Replay feeds every replayable session in the pack back through sys and
// compares each reproduced decision bit-for-bit against the packed one.
// It errors on structural problems (redacted sessions, missing
// decisions, undecodable requests); verdict divergence is reported in
// the results, not as an error.
func Replay(p *evidence.Pack, sys *core.System) ([]ReplayResult, error) {
	if len(p.Sessions.Sessions) == 0 {
		return nil, errors.New("rebuild: pack carries no sessions to replay")
	}
	var out []ReplayResult
	for _, env := range p.Sessions.Sessions {
		want, ok := p.Decision(env.TraceID)
		if !ok {
			return nil, fmt.Errorf("rebuild: session %s has no packed decision", env.TraceID)
		}
		req, err := protocol.RequestFromEnvelope(env)
		if err != nil {
			return nil, fmt.Errorf("rebuild: unwrapping session %s: %w", env.TraceID, err)
		}
		session, err := protocol.ToSession(req)
		if err != nil {
			return nil, fmt.Errorf("rebuild: rebuilding session %s: %w", env.TraceID, err)
		}
		res := ReplayResult{TraceID: env.TraceID}
		if env.SessionDigest != "" {
			if got := core.SessionDigest(session); got != env.SessionDigest {
				return nil, fmt.Errorf("rebuild: session %s digest mismatch: envelope %s, rebuilt %s",
					env.TraceID, env.SessionDigest, got)
			}
		}
		decision, err := sys.Verify(session)
		if err != nil {
			return nil, fmt.Errorf("rebuild: replaying session %s: %w", env.TraceID, err)
		}
		res.Replayed = core.DecisionEvidence(decision)
		res.Diffs = compareDecisions(want, res.Replayed)
		res.Match = len(res.Diffs) == 0
		out = append(out, res)
	}
	return out, nil
}

// compareDecisions lists the bit-level divergences between the packed
// and replayed forms of one decision. Trace IDs and elapsed times are
// expected to differ and are not compared.
func compareDecisions(want, got evidence.DecisionRecord) []string {
	var diffs []string
	if want.Accepted != got.Accepted {
		diffs = append(diffs, fmt.Sprintf("verdict: pack accepted=%v, replay accepted=%v",
			want.Accepted, got.Accepted))
	}
	if want.FailedStage != got.FailedStage {
		diffs = append(diffs, fmt.Sprintf("failed stage: pack %q, replay %q",
			want.FailedStage, got.FailedStage))
	}
	if len(want.Stages) != len(got.Stages) {
		diffs = append(diffs, fmt.Sprintf("stage count: pack %d, replay %d",
			len(want.Stages), len(got.Stages)))
	}
	n := len(want.Stages)
	if len(got.Stages) < n {
		n = len(got.Stages)
	}
	for i := 0; i < n; i++ {
		ws, gs := want.Stages[i], got.Stages[i]
		if ws.Stage != gs.Stage {
			diffs = append(diffs, fmt.Sprintf("stage %d: pack %q, replay %q", i+1, ws.Stage, gs.Stage))
			continue
		}
		if ws.Pass != gs.Pass {
			diffs = append(diffs, fmt.Sprintf("stage %s: pack pass=%v, replay pass=%v",
				ws.Stage, ws.Pass, gs.Pass))
		}
		if ws.ScoreBits != gs.ScoreBits {
			diffs = append(diffs, fmt.Sprintf("stage %s: pack score %v (bits %s), replay score %v (bits %s)",
				ws.Stage, ws.Score, ws.ScoreBits, gs.Score, gs.ScoreBits))
		}
	}
	return diffs
}

// joinLines joins diff lines with the indentation Replay's error uses.
func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
