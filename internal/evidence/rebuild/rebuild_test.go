package rebuild

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"voiceguard/internal/attack"
	"voiceguard/internal/core"
	"voiceguard/internal/device"
	"voiceguard/internal/evidence"
	"voiceguard/internal/protocol"
	"voiceguard/internal/ranging"
	"voiceguard/internal/telemetry"
)

// buildPackForTest runs one genuine and one replay-attack session
// through a freshly built (no-ASV) pipeline via the wire codec — the
// same lossy WAV round trip the server path takes — and packs the
// resulting decisions.
func buildPackForTest(t *testing.T, prov evidence.Provenance) *evidence.Pack {
	t.Helper()
	sys, err := System(prov)
	if err != nil {
		t.Fatal(err)
	}
	recorder := telemetry.NewFlightRecorder(8)
	sys.Tracer = telemetry.NewTracer(telemetry.TracerConfig{Recorder: recorder})

	victim := Profile("victim", prov.FieldSeed)
	sc := attack.Scenario{Distance: 0.06, ClaimedUser: "victim", Seed: prov.FieldSeed}
	genuine, err := attack.Genuine(victim, sc)
	if err != nil {
		t.Fatal(err)
	}
	recording, err := attack.Record(victim, "472913", prov.FieldSeed)
	if err != nil {
		t.Fatal(err)
	}
	replaySc := sc
	replaySc.Seed = prov.FieldSeed + 1
	replayed, err := attack.Replay(recording, device.Catalog()[0], replaySc)
	if err != nil {
		t.Fatal(err)
	}

	b := evidence.NewBuilder(time.Unix(0, 0))
	for i, session := range []*core.SessionData{genuine, replayed} {
		req, err := protocol.FromSession(session, ranging.DefaultPilotHz)
		if err != nil {
			t.Fatal(err)
		}
		// Decisions are computed on the decoded request, exactly as the
		// server does, so replay of the packed request is bit-identical.
		decoded, err := protocol.ToSession(req)
		if err != nil {
			t.Fatal(err)
		}
		traceID := []string{"t-genuine", "t-replayattack"}[i]
		decision, err := sys.VerifyTraced(traceID, decoded)
		if err != nil {
			t.Fatal(err)
		}
		env, err := protocol.SessionEnvelopeFromRequest(traceID, req, evidence.RedactNone)
		if err != nil {
			t.Fatal(err)
		}
		b.AddDecision(core.DecisionEvidence(decision), recorder.Find(traceID), env)
	}
	digests, err := sys.ModelDigests()
	if err != nil {
		t.Fatal(err)
	}
	b.SetModels(digests, &prov)
	var buf bytes.Buffer
	if err := b.WriteZip(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := evidence.ReadBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if probs := evidence.Verify(p); len(probs) != 0 {
		for _, pr := range probs {
			t.Errorf("pack problem: %s", pr)
		}
		t.Fatal("freshly built pack failed verification")
	}
	return p
}

func TestReplayReproducesVerdicts(t *testing.T) {
	prov := evidence.Provenance{Generator: "test", FieldSeed: 7}
	p := buildPackForTest(t, prov)

	// Rebuild a SECOND system from the pack's provenance alone — the
	// offline replayer's position — and check it digests identically.
	sys, err := SystemFromPack(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckModels(p, sys); err != nil {
		t.Fatal(err)
	}

	results, err := Replay(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("replayed %d sessions, want 2", len(results))
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("replay of %s diverged:\n  %s", r.TraceID, strings.Join(r.Diffs, "\n  "))
		}
	}
	// The attack session must actually have been rejected, or the test
	// proves nothing about evidence-carrying rejections.
	d, ok := p.Decision("t-replayattack")
	if !ok || d.Accepted {
		t.Fatalf("replay-attack decision: ok=%v accepted=%v", ok, d.Accepted)
	}
	g, ok := p.Decision("t-genuine")
	if !ok || !g.Accepted {
		t.Fatalf("genuine decision: ok=%v accepted=%v", ok, g.Accepted)
	}
}

func TestCheckModelsDetectsSkew(t *testing.T) {
	prov := evidence.Provenance{Generator: "test", FieldSeed: 7}
	p := buildPackForTest(t, prov)
	skewed, err := System(evidence.Provenance{Generator: "test", FieldSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	err = CheckModels(p, skewed)
	if err == nil {
		t.Fatal("model skew went undetected")
	}
	if !strings.Contains(err.Error(), "soundfield/band/") {
		t.Fatalf("skew error does not name the diverging model: %v", err)
	}
}

func TestReplayDetectsTamperedVerdict(t *testing.T) {
	prov := evidence.Provenance{Generator: "test", FieldSeed: 7}
	p := buildPackForTest(t, prov)
	// Flip the packed genuine verdict: replay must report divergence.
	for i := range p.Decisions {
		if p.Decisions[i].TraceID == "t-genuine" {
			p.Decisions[i].Accepted = false
			p.Decisions[i].FailedStage = "distance"
		}
	}
	sys, err := SystemFromPack(p)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Replay(p, sys)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, r := range results {
		if r.TraceID == "t-genuine" && !r.Match {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("tampered verdict replayed as a match")
	}
}

func TestReplayRefusesRedactedSessions(t *testing.T) {
	prov := evidence.Provenance{Generator: "test", FieldSeed: 7}
	p := buildPackForTest(t, prov)
	for i := range p.Sessions.Sessions {
		p.Sessions.Sessions[i].Redaction = evidence.RedactDigests
		p.Sessions.Sessions[i].Audio = []evidence.AudioDigest{{Channel: "voice", Digest: evidence.Digest(nil)}}
	}
	sys, err := SystemFromPack(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(p, sys); err == nil {
		t.Fatal("replay of a redacted pack succeeded")
	}
}
