package evidence

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"voiceguard/internal/telemetry"
)

// Problem is one verification failure, locating the member and record it
// concerns.
type Problem struct {
	// Member is the pack member the problem lives in ("" for pack-level
	// problems).
	Member string
	// TraceID is the decision the problem concerns ("" for member-level
	// problems).
	TraceID string
	// Msg describes what failed.
	Msg string
}

// String renders the problem one-line, member and trace first.
func (p Problem) String() string {
	var b strings.Builder
	if p.Member != "" {
		b.WriteString(p.Member)
		b.WriteString(": ")
	}
	if p.TraceID != "" {
		b.WriteString("trace ")
		b.WriteString(p.TraceID)
		b.WriteString(": ")
	}
	b.WriteString(p.Msg)
	return b.String()
}

// skippedDetailPrefix marks a stage result the cascade recorded without
// running the stage (speculative work abandoned after an earlier
// failure); such stages legitimately carry no span evidence.
const skippedDetailPrefix = "abandoned: "

// Verify checks a pack's integrity and internal consistency offline:
//
//   - every member's bytes re-hash to its manifest digest, the digest
//     chain recomputes to the manifest root, and no member is missing or
//     unlisted;
//   - every decision's span tree is present and agrees with it — verdict,
//     failed stage, and for every non-skipped stage a stage span whose
//     pass bit matches and whose score attribute is bit-identical to the
//     decision's ScoreBits, carrying at least one threshold_* attribute
//     (the evidence the verdict rests on);
//   - session envelopes reference packed decisions, declare a known
//     redaction mode, and redacted envelopes carry audio digests;
//   - model digests are well-formed.
//
// The returned problems are empty iff the pack verifies.
func Verify(p *Pack) []Problem {
	var probs []Problem
	probs = append(probs, verifyManifest(p)...)
	probs = append(probs, verifyDecisions(p)...)
	probs = append(probs, verifySessions(p)...)
	probs = append(probs, verifyModels(p)...)
	return probs
}

// verifyManifest re-hashes every member and recomputes the digest chain.
func verifyManifest(p *Pack) []Problem {
	var probs []Problem
	m := p.Manifest
	if m.SchemaVersion != SchemaVersion {
		probs = append(probs, Problem{Member: ManifestMember,
			Msg: fmt.Sprintf("schema version %d, this build reads %d", m.SchemaVersion, SchemaVersion)})
	}

	listed := make(map[string]Member, len(m.Members))
	names := make([]string, 0, len(m.Members))
	for _, mem := range m.Members {
		if _, dup := listed[mem.Name]; dup {
			probs = append(probs, Problem{Member: ManifestMember,
				Msg: fmt.Sprintf("member %s listed twice", mem.Name)})
			continue
		}
		listed[mem.Name] = mem
		names = append(names, mem.Name)
	}
	if !sort.StringsAreSorted(names) {
		probs = append(probs, Problem{Member: ManifestMember, Msg: "members not sorted by name"})
		sort.Strings(names)
	}

	for _, name := range names {
		mem := listed[name]
		data, ok := p.Raw[name]
		if !ok {
			probs = append(probs, Problem{Member: name, Msg: "listed in manifest but missing from pack"})
			continue
		}
		if int64(len(data)) != mem.Size {
			probs = append(probs, Problem{Member: name,
				Msg: fmt.Sprintf("size %d, manifest says %d", len(data), mem.Size)})
		}
		if got := Digest(data); got != mem.Digest {
			probs = append(probs, Problem{Member: name,
				Msg: fmt.Sprintf("digest mismatch: member hashes to %s, manifest says %s", got, mem.Digest)})
		}
	}
	for name := range p.Raw {
		if name == ManifestMember {
			continue
		}
		if _, ok := listed[name]; !ok {
			probs = append(probs, Problem{Member: name, Msg: "present in pack but not listed in manifest"})
		}
	}

	chain := ChainSeed()
	for _, name := range names {
		chain = ChainDigest(chain, name, listed[name].Digest)
	}
	if chain != m.RootDigest {
		probs = append(probs, Problem{Member: ManifestMember,
			Msg: fmt.Sprintf("root digest mismatch: chain recomputes to %s, manifest says %s", chain, m.RootDigest)})
	}
	return probs
}

// verifyDecisions cross-checks every decision against its span tree.
func verifyDecisions(p *Pack) []Problem {
	var probs []Problem
	for _, d := range p.Decisions {
		bad := func(msg string) {
			probs = append(probs, Problem{Member: DecisionsMember, TraceID: d.TraceID, Msg: msg})
		}
		tr := p.Trace(d.TraceID)
		if tr == nil {
			bad("no span tree in " + SpansMember)
			continue
		}
		if tr.Accepted != d.Accepted {
			bad(fmt.Sprintf("verdict disagrees with span tree: decision accepted=%v, trace accepted=%v",
				d.Accepted, tr.Accepted))
		}
		if tr.FailedStage != d.FailedStage {
			bad(fmt.Sprintf("failed stage disagrees with span tree: decision %q, trace %q",
				d.FailedStage, tr.FailedStage))
		}
		if d.Accepted && d.FailedStage != "" {
			bad(fmt.Sprintf("accepted decision names failed stage %q", d.FailedStage))
		}
		if !d.Accepted && d.FailedStage == "" {
			bad("rejected decision names no failed stage")
		}
		if !d.Accepted && len(d.Stages) > 0 {
			last := d.Stages[len(d.Stages)-1]
			if last.Stage != d.FailedStage {
				bad(fmt.Sprintf("last stage %q is not the failed stage %q", last.Stage, d.FailedStage))
			}
		}

		for _, st := range d.Stages {
			badStage := func(msg string) {
				probs = append(probs, Problem{Member: DecisionsMember, TraceID: d.TraceID,
					Msg: "stage " + st.Stage + ": " + msg})
			}
			wantBits := FloatBits(st.Score)
			if st.ScoreBits != wantBits {
				badStage(fmt.Sprintf("score %v has bits %s but score_bits says %s",
					st.Score, wantBits, st.ScoreBits))
			}
			if strings.HasPrefix(st.Detail, skippedDetailPrefix) {
				continue // skipped stage: no span evidence expected
			}
			sp, ok := tr.StageSpan(st.Stage)
			if !ok {
				badStage("no stage span in trace")
				continue
			}
			if a, ok := sp.Attr("pass"); !ok {
				badStage("stage span has no pass attribute")
			} else if a.Bool != st.Pass {
				badStage(fmt.Sprintf("span pass=%v, decision pass=%v", a.Bool, st.Pass))
			}
			if a, ok := sp.Attr("score"); !ok {
				badStage("stage span has no score attribute")
			} else if math.Float64bits(a.Float) != math.Float64bits(st.Score) {
				badStage(fmt.Sprintf("span score bits %s, decision score bits %s",
					FloatBits(a.Float), st.ScoreBits))
			}
			if !hasThresholdAttr(sp.Attrs) {
				badStage("stage span carries no threshold_* evidence attribute")
			}
		}
	}
	return probs
}

// hasThresholdAttr reports whether any attribute documents the threshold
// the stage compared against.
func hasThresholdAttr(attrs []telemetry.Attr) bool {
	for _, a := range attrs {
		if strings.HasPrefix(a.Key, "threshold_") {
			return true
		}
	}
	return false
}

// verifySessions checks envelope keying and redaction declarations.
func verifySessions(p *Pack) []Problem {
	var probs []Problem
	for _, env := range p.Sessions.Sessions {
		bad := func(msg string) {
			probs = append(probs, Problem{Member: SessionMember, TraceID: env.TraceID, Msg: msg})
		}
		if _, ok := p.Decision(env.TraceID); !ok {
			bad("session envelope for a trace with no packed decision")
		}
		switch env.Redaction {
		case RedactNone:
		case RedactDigests:
			if len(env.Audio) == 0 {
				bad("redacted envelope carries no audio digests")
			}
			for _, ad := range env.Audio {
				if !ValidDigest(ad.Digest) {
					bad(fmt.Sprintf("audio channel %s: malformed digest %q", ad.Channel, ad.Digest))
				}
				for i, fd := range ad.FrameDigests {
					if !ValidDigest(fd) {
						bad(fmt.Sprintf("audio channel %s: malformed frame digest %d", ad.Channel, i))
						break
					}
				}
			}
		default:
			bad(fmt.Sprintf("unknown redaction mode %q", env.Redaction))
		}
		if env.SessionDigest != "" && !ValidDigest(env.SessionDigest) {
			bad(fmt.Sprintf("malformed session digest %q", env.SessionDigest))
		}
		if len(env.Request) == 0 {
			bad("envelope carries no request")
		}
	}
	return probs
}

// verifyModels checks digest well-formedness.
func verifyModels(p *Pack) []Problem {
	var probs []Problem
	keys := make([]string, 0, len(p.Models.Digests))
	for k := range p.Models.Digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !ValidDigest(p.Models.Digests[k]) {
			probs = append(probs, Problem{Member: ModelsMember,
				Msg: fmt.Sprintf("model %s: malformed digest %q", k, p.Models.Digests[k])})
		}
	}
	return probs
}
