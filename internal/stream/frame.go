// Package stream implements the length-prefixed binary framing protocol
// the streaming verification path speaks (PROTOCOL.md): a magic + version
// handshake followed by typed, CRC-protected frames whose payloads carry
// one verification session in arrival order — hello, segment marks,
// interleaved sensor chunks, sound-field chunks, audio chunks, and a
// finish frame sealing the session under a SHA-256 digest. The server
// answers with a single decision or error frame.
//
// The package is pure wire format: it knows nothing about the pipeline.
// internal/protocol bridges frames to VerifyRequest/SessionData and
// internal/server, internal/client speak the protocol over TCP.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// magic opens both directions of the handshake. Four bytes, chosen to
// never collide with an HTTP method so a client pointed at the wrong
// listener fails fast.
var magic = [4]byte{'V', 'G', 'S', 'P'}

// Version is the protocol revision this package speaks. The handshake
// negotiates min(client, server); 0 signals refusal.
const Version uint8 = 1

// FrameType identifies a frame's payload codec.
type FrameType uint8

// Frame types. Types 1–6 flow client→server (session data), 7–8
// server→client (the reply).
const (
	TypeHello FrameType = iota + 1
	TypeSensorChunk
	TypeFieldChunk
	TypeAudioChunk
	TypeSegmentMarks
	TypeFinish
	TypeDecision
	TypeError
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeSensorChunk:
		return "sensor_chunk"
	case TypeFieldChunk:
		return "field_chunk"
	case TypeAudioChunk:
		return "audio_chunk"
	case TypeSegmentMarks:
		return "segment_marks"
	case TypeFinish:
		return "finish"
	case TypeDecision:
		return "decision"
	case TypeError:
		return "error"
	default:
		return "unknown"
	}
}

// Frame flags.
const (
	// FlagLast marks the final chunk of a frame's channel (the gyro
	// trace, the voice audio, ...): the channel is complete and the
	// incremental evaluator may admit every stage waiting on it.
	FlagLast uint8 = 1 << 0
	// FlagEarly marks a decision frame emitted before the finish frame
	// was processed — the early-exit path. Clients surface it as
	// "decided before the upload completed".
	FlagEarly uint8 = 1 << 1
)

// Frame is one protocol frame. On the wire:
//
//	type   uint8
//	flags  uint8
//	length uint64 LE  (payload bytes)
//	payload
//	crc32  uint32 LE  (IEEE, over type+flags+payload)
type Frame struct {
	Type    FrameType
	Flags   uint8
	Payload []byte
}

// frameOverheadBytes is the non-payload cost of a frame on the wire.
const frameOverheadBytes = 1 + 1 + 8 + 4

// WireSize returns the frame's total on-wire byte count.
func (f Frame) WireSize() int64 { return int64(len(f.Payload)) + frameOverheadBytes }

// DefMaxFrameBytes is the default payload cap ReadFrame enforces. The
// largest well-formed frame is an audio chunk (DefAudioChunkSamples
// float64s); 4 MiB leaves generous headroom while keeping a hostile
// length prefix from ballooning server memory.
const DefMaxFrameBytes = 4 << 20

// Protocol errors, each wrapped with frame context by ReadFrame.
var (
	ErrBadMagic     = errors.New("stream: bad protocol magic")
	ErrBadVersion   = errors.New("stream: unsupported protocol version")
	ErrFrameTooBig  = errors.New("stream: frame exceeds size limit")
	ErrChecksum     = errors.New("stream: frame checksum mismatch")
	ErrUnknownFrame = errors.New("stream: unknown frame type")
)

// WriteHandshake sends one direction of the opening exchange: the magic
// followed by the sender's protocol version (the client sends its
// highest supported; the server replies with the negotiated version, or
// 0 to refuse).
func WriteHandshake(w io.Writer, version uint8) error {
	var buf [5]byte
	copy(buf[:4], magic[:])
	buf[4] = version
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("stream: writing handshake: %w", err)
	}
	return nil
}

// ReadHandshake reads and validates one direction of the opening
// exchange, returning the peer's version byte (which may be 0: a
// server's refusal).
func ReadHandshake(r io.Reader) (uint8, error) {
	var buf [5]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("stream: reading handshake: %w", err)
	}
	if [4]byte(buf[:4]) != magic {
		return 0, ErrBadMagic
	}
	return buf[4], nil
}

// NegotiateVersion picks the version a server answers a client hello
// with: the highest revision both sides speak, or 0 (refusal) when the
// client is too old or too strange to serve.
func NegotiateVersion(client uint8) uint8 {
	if client < 1 {
		return 0
	}
	if client < Version {
		return client
	}
	return Version
}

// WriteFrame emits one frame.
func WriteFrame(w io.Writer, f Frame) error {
	header := make([]byte, 10)
	header[0] = byte(f.Type)
	header[1] = f.Flags
	binary.LittleEndian.PutUint64(header[2:], uint64(len(f.Payload)))
	crc := crc32.NewIEEE()
	crc.Write(header[:2])
	crc.Write(f.Payload)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	for _, part := range [][]byte{header, f.Payload, trailer[:]} {
		if _, err := w.Write(part); err != nil {
			return fmt.Errorf("stream: writing %v frame: %w", f.Type, err)
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing maxPayload (0 uses
// DefMaxFrameBytes) before allocating and verifying the trailing CRC
// before returning. Errors wrap the sentinel protocol errors above;
// anything else is a transport failure.
func ReadFrame(r io.Reader, maxPayload uint64) (Frame, error) {
	if maxPayload == 0 {
		maxPayload = DefMaxFrameBytes
	}
	var header [10]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return Frame{}, fmt.Errorf("stream: reading frame header: %w", err)
	}
	f := Frame{Type: FrameType(header[0]), Flags: header[1]}
	if f.Type < TypeHello || f.Type > TypeError {
		return Frame{}, fmt.Errorf("%w: type %d", ErrUnknownFrame, header[0])
	}
	length := binary.LittleEndian.Uint64(header[2:])
	if length > maxPayload {
		return Frame{}, fmt.Errorf("%w: %v frame declares %d payload bytes (limit %d)",
			ErrFrameTooBig, f.Type, length, maxPayload)
	}
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("stream: reading %v frame payload: %w", f.Type, err)
		}
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return Frame{}, fmt.Errorf("stream: reading %v frame checksum: %w", f.Type, err)
	}
	crc := crc32.NewIEEE()
	crc.Write(header[:2])
	crc.Write(f.Payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(trailer[:]) {
		return Frame{}, fmt.Errorf("%w: %v frame", ErrChecksum, f.Type)
	}
	return f, nil
}
