package stream

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame drives the frame decoder with arbitrary byte streams:
// ReadFrame must never panic, never allocate past the payload cap, and
// any frame it accepts must survive a write/read round trip bit-for-bit.
func FuzzReadFrame(f *testing.F) {
	wire := func(fr Frame) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatalf("seed WriteFrame: %v", err)
		}
		return buf.Bytes()
	}
	hello, err := EncodeHello(Hello{TraceID: "fuzz", ClaimedUser: "victim", PilotHz: 19000})
	if err != nil {
		f.Fatalf("seed EncodeHello: %v", err)
	}
	valid := [][]byte{
		wire(Frame{Type: TypeHello, Payload: hello}),
		wire(Frame{Type: TypeSensorChunk, Flags: FlagLast, Payload: EncodeSensorChunk(SensorChunk{
			Kind: SensorMag, Samples: []Sample{{T: 0.01, X: 30, Y: -12, Z: 44}},
		})}),
		wire(Frame{Type: TypeFieldChunk, Payload: EncodeFieldChunk(FieldChunk{
			Points: []FieldPoint{{AngleDeg: 45, FreqHz: 2000, LevelDB: 61}},
		})}),
		wire(Frame{Type: TypeAudioChunk, Payload: EncodeAudioChunk(AudioChunk{
			Kind: AudioCapture, Rate: 44100, Samples: []float64{0.1, -0.1},
		})}),
		wire(Frame{Type: TypeSegmentMarks, Payload: EncodeSegmentMarks(SegmentMarks{SweepStart: 0.2, SweepEnd: 2.0})}),
		wire(Frame{Type: TypeFinish, Payload: EncodeFinish(Finish{Digest: sha256.Sum256(nil), Frames: 3})}),
		wire(Frame{Type: TypeDecision, Payload: []byte(`{"accepted":false}`), Flags: FlagEarly}),
		wire(Frame{Type: TypeError, Payload: EncodeError(ErrorInfo{Status: 503, RetryAfterSec: 1, Envelope: []byte(`{}`)})}),
	}
	for _, raw := range valid {
		f.Add(raw)
		f.Add(raw[:len(raw)/2]) // truncated mid-frame
		corrupt := bytes.Clone(raw)
		corrupt[len(corrupt)-1] ^= 0xff // corrupt digest/CRC trailer
		f.Add(corrupt)
	}
	oversized := make([]byte, 10)
	oversized[0] = byte(TypeAudioChunk)
	binary.LittleEndian.PutUint64(oversized[2:], 1<<40)
	f.Add(oversized)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		const payloadCap = 1 << 16
		got, err := ReadFrame(bytes.NewReader(data), payloadCap)
		if err != nil {
			return
		}
		if len(got.Payload) > payloadCap {
			t.Fatalf("decoded payload of %d bytes exceeds cap %d", len(got.Payload), payloadCap)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, got); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		again, err := ReadFrame(&buf, payloadCap)
		if err != nil {
			t.Fatalf("re-decoding accepted frame: %v", err)
		}
		if again.Type != got.Type || again.Flags != got.Flags || !bytes.Equal(again.Payload, got.Payload) {
			t.Fatalf("round trip diverged: %+v vs %+v", got, again)
		}

		// Payload decoders must be total: no panics, no unbounded work.
		switch got.Type {
		case TypeHello:
			_, _ = DecodeHello(got.Payload)
		case TypeSensorChunk:
			_, _ = DecodeSensorChunk(got.Payload)
		case TypeFieldChunk:
			_, _ = DecodeFieldChunk(got.Payload)
		case TypeAudioChunk:
			_, _ = DecodeAudioChunk(got.Payload)
		case TypeSegmentMarks:
			_, _ = DecodeSegmentMarks(got.Payload)
		case TypeFinish:
			_, _ = DecodeFinish(got.Payload)
		case TypeError:
			_, _ = DecodeError(got.Payload)
		}
	})
}
