package stream

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"
)

// SensorKind names the inertial/magnetic channel a sensor chunk extends.
type SensorKind uint8

// Sensor channels.
const (
	SensorGyro SensorKind = iota
	SensorAccel
	SensorMag
)

// String implements fmt.Stringer.
func (k SensorKind) String() string {
	switch k {
	case SensorGyro:
		return "gyro"
	case SensorAccel:
		return "accel"
	case SensorMag:
		return "mag"
	default:
		return "unknown"
	}
}

// AudioKind names the audio channel an audio chunk extends.
type AudioKind uint8

// Audio channels.
const (
	AudioCapture AudioKind = iota
	AudioVoice
)

// String implements fmt.Stringer.
func (k AudioKind) String() string {
	switch k {
	case AudioCapture:
		return "capture"
	case AudioVoice:
		return "voice"
	default:
		return "unknown"
	}
}

// Hello opens a session: the identity claim and the capture's ranging
// pilot, plus an optional client-minted trace ID (the streaming
// equivalent of the X-Request-ID header; empty lets the server mint).
type Hello struct {
	TraceID     string
	ClaimedUser string
	// PilotHz is the ranging pilot frequency of the capture.
	PilotHz float64 // unit: Hz
}

// Sample is one sensor sample on the wire (time plus a 3-axis reading;
// units are the channel's native ones, as in the JSON protocol).
type Sample struct {
	T       float64 // unit: s
	X, Y, Z float64
}

// SensorChunk extends one sensor channel.
type SensorChunk struct {
	Kind    SensorKind
	Samples []Sample
}

// FieldPoint is one sound-field measurement on the wire.
type FieldPoint struct {
	AngleDeg float64 // unit: deg
	FreqHz   float64 // unit: Hz
	LevelDB  float64 // unit: dB
}

// FieldChunk extends the sound-field sweep.
type FieldChunk struct {
	Points []FieldPoint
}

// AudioChunk extends one audio channel with raw samples. Rate repeats on
// every chunk of a channel and must not change mid-stream.
type AudioChunk struct {
	Kind AudioKind
	// Rate is the channel's sampling rate.
	Rate float64 // unit: Hz
	// Samples are normalized PCM samples in [-1, 1].
	Samples []float64 // unit: dimensionless
}

// SegmentMarks bounds the ranging sweep segment inside the capture.
type SegmentMarks struct {
	SweepStart float64 // unit: s
	SweepEnd   float64 // unit: s
}

// Finish seals the session: the SHA-256 session digest over every data
// frame sent before it (see SessionDigest) and the number of those
// frames. The server refuses to decide a session whose received bytes do
// not reproduce the digest.
type Finish struct {
	Digest [sha256.Size]byte
	Frames uint32
}

// ErrorInfo is the server's refusal payload: an HTTP-equivalent status
// code, an optional retry hint, and the same JSON error envelope the
// HTTP path returns (protocol.VerifyResponse with Error set).
type ErrorInfo struct {
	// Status is the HTTP-equivalent status code (400, 429, 503, ...).
	Status uint16
	// RetryAfterSec is the server's retry hint in whole seconds (0 =
	// none), mirroring the Retry-After header of the HTTP path.
	RetryAfterSec uint16 // unit: s
	// Envelope is the JSON error envelope.
	Envelope []byte
}

// Default chunk sizes the client-side bridge (internal/protocol) uses
// when slicing a session into frames. Sensor chunks stay small so the
// magnetometer channel — the earliest decisive evidence — reaches the
// server in many increments; audio ships in bulk because nothing decides
// on a partial signal.
const (
	DefSensorChunkSamples = 64
	DefFieldChunkPoints   = 16
	DefAudioChunkSamples  = 8192
)

// payloadReader is a bounds-checked cursor over a frame payload.
type payloadReader struct {
	buf  []byte
	off  int
	what string
}

func (r *payloadReader) fail(field string) error {
	return fmt.Errorf("stream: %s payload: truncated at %s (offset %d of %d)",
		r.what, field, r.off, len(r.buf))
}

func (r *payloadReader) u8(field string) (uint8, error) {
	if r.off+1 > len(r.buf) {
		return 0, r.fail(field)
	}
	v := r.buf[r.off]
	r.off++
	return v, nil
}

func (r *payloadReader) u16(field string) (uint16, error) {
	if r.off+2 > len(r.buf) {
		return 0, r.fail(field)
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v, nil
}

func (r *payloadReader) u32(field string) (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, r.fail(field)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *payloadReader) f64(field string) (float64, error) {
	if r.off+8 > len(r.buf) {
		return 0, r.fail(field)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v, nil
}

func (r *payloadReader) bytes(field string, n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, r.fail(field)
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v, nil
}

// leftover reports an error when payload bytes remain unconsumed — a
// malformed (or hostile) frame, not padding.
func (r *payloadReader) leftover() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("stream: %s payload: %d trailing bytes", r.what, len(r.buf)-r.off)
	}
	return nil
}

// elems validates a declared element count against the bytes actually
// present, so a hostile count cannot drive a huge allocation.
func (r *payloadReader) elems(field string, count uint32, elemBytes int) (int, error) {
	n := int(count)
	if remaining := len(r.buf) - r.off; n*elemBytes != remaining {
		return 0, fmt.Errorf("stream: %s payload: %s declares %d elements (%d bytes) but %d bytes follow",
			r.what, field, n, n*elemBytes, remaining)
	}
	return n, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// maxStringBytes bounds the hello's string fields; a user name or trace
// ID is never longer.
const maxStringBytes = 1 << 10

// EncodeHello builds a TypeHello payload.
func EncodeHello(h Hello) ([]byte, error) {
	if len(h.TraceID) > maxStringBytes || len(h.ClaimedUser) > maxStringBytes {
		return nil, fmt.Errorf("stream: hello strings exceed %d bytes", maxStringBytes)
	}
	buf := appendString(nil, h.TraceID)
	buf = appendString(buf, h.ClaimedUser)
	return appendF64(buf, h.PilotHz), nil
}

// DecodeHello parses a TypeHello payload.
func DecodeHello(p []byte) (Hello, error) {
	r := &payloadReader{buf: p, what: "hello"}
	var h Hello
	for _, dst := range []*string{&h.TraceID, &h.ClaimedUser} {
		n, err := r.u16("string length")
		if err != nil {
			return Hello{}, err
		}
		if n > maxStringBytes {
			return Hello{}, fmt.Errorf("stream: hello string of %d bytes exceeds %d", n, maxStringBytes)
		}
		b, err := r.bytes("string", int(n))
		if err != nil {
			return Hello{}, err
		}
		*dst = string(b)
	}
	var err error
	if h.PilotHz, err = r.f64("pilot_hz"); err != nil {
		return Hello{}, err
	}
	return h, r.leftover()
}

// EncodeSensorChunk builds a TypeSensorChunk payload.
func EncodeSensorChunk(c SensorChunk) []byte {
	buf := []byte{byte(c.Kind)}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Samples)))
	for _, s := range c.Samples {
		buf = appendF64(buf, s.T)
		buf = appendF64(buf, s.X)
		buf = appendF64(buf, s.Y)
		buf = appendF64(buf, s.Z)
	}
	return buf
}

// DecodeSensorChunk parses a TypeSensorChunk payload.
func DecodeSensorChunk(p []byte) (SensorChunk, error) {
	r := &payloadReader{buf: p, what: "sensor_chunk"}
	kind, err := r.u8("kind")
	if err != nil {
		return SensorChunk{}, err
	}
	if SensorKind(kind) > SensorMag {
		return SensorChunk{}, fmt.Errorf("stream: sensor_chunk payload: unknown sensor kind %d", kind)
	}
	count, err := r.u32("count")
	if err != nil {
		return SensorChunk{}, err
	}
	n, err := r.elems("count", count, 32)
	if err != nil {
		return SensorChunk{}, err
	}
	c := SensorChunk{Kind: SensorKind(kind), Samples: make([]Sample, n)}
	for i := range c.Samples {
		s := &c.Samples[i]
		for _, dst := range []*float64{&s.T, &s.X, &s.Y, &s.Z} {
			if *dst, err = r.f64("sample"); err != nil {
				return SensorChunk{}, err
			}
		}
	}
	return c, r.leftover()
}

// EncodeFieldChunk builds a TypeFieldChunk payload.
func EncodeFieldChunk(c FieldChunk) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(c.Points)))
	for _, pt := range c.Points {
		buf = appendF64(buf, pt.AngleDeg)
		buf = appendF64(buf, pt.FreqHz)
		buf = appendF64(buf, pt.LevelDB)
	}
	return buf
}

// DecodeFieldChunk parses a TypeFieldChunk payload.
func DecodeFieldChunk(p []byte) (FieldChunk, error) {
	r := &payloadReader{buf: p, what: "field_chunk"}
	count, err := r.u32("count")
	if err != nil {
		return FieldChunk{}, err
	}
	n, err := r.elems("count", count, 24)
	if err != nil {
		return FieldChunk{}, err
	}
	c := FieldChunk{Points: make([]FieldPoint, n)}
	for i := range c.Points {
		pt := &c.Points[i]
		for _, dst := range []*float64{&pt.AngleDeg, &pt.FreqHz, &pt.LevelDB} {
			if *dst, err = r.f64("point"); err != nil {
				return FieldChunk{}, err
			}
		}
	}
	return c, r.leftover()
}

// EncodeAudioChunk builds a TypeAudioChunk payload.
func EncodeAudioChunk(c AudioChunk) []byte {
	buf := []byte{byte(c.Kind)}
	buf = appendF64(buf, c.Rate)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Samples)))
	for _, s := range c.Samples {
		buf = appendF64(buf, s)
	}
	return buf
}

// DecodeAudioChunk parses a TypeAudioChunk payload.
func DecodeAudioChunk(p []byte) (AudioChunk, error) {
	r := &payloadReader{buf: p, what: "audio_chunk"}
	kind, err := r.u8("kind")
	if err != nil {
		return AudioChunk{}, err
	}
	if AudioKind(kind) > AudioVoice {
		return AudioChunk{}, fmt.Errorf("stream: audio_chunk payload: unknown audio kind %d", kind)
	}
	c := AudioChunk{Kind: AudioKind(kind)}
	if c.Rate, err = r.f64("rate"); err != nil {
		return AudioChunk{}, err
	}
	count, err := r.u32("count")
	if err != nil {
		return AudioChunk{}, err
	}
	n, err := r.elems("count", count, 8)
	if err != nil {
		return AudioChunk{}, err
	}
	c.Samples = make([]float64, n)
	for i := range c.Samples {
		if c.Samples[i], err = r.f64("sample"); err != nil {
			return AudioChunk{}, err
		}
	}
	return c, r.leftover()
}

// EncodeSegmentMarks builds a TypeSegmentMarks payload.
func EncodeSegmentMarks(m SegmentMarks) []byte {
	return appendF64(appendF64(nil, m.SweepStart), m.SweepEnd)
}

// DecodeSegmentMarks parses a TypeSegmentMarks payload.
func DecodeSegmentMarks(p []byte) (SegmentMarks, error) {
	r := &payloadReader{buf: p, what: "segment_marks"}
	var m SegmentMarks
	var err error
	if m.SweepStart, err = r.f64("sweep_start"); err != nil {
		return SegmentMarks{}, err
	}
	if m.SweepEnd, err = r.f64("sweep_end"); err != nil {
		return SegmentMarks{}, err
	}
	return m, r.leftover()
}

// EncodeFinish builds a TypeFinish payload.
func EncodeFinish(f Finish) []byte {
	buf := make([]byte, 0, sha256.Size+4)
	buf = append(buf, f.Digest[:]...)
	return binary.LittleEndian.AppendUint32(buf, f.Frames)
}

// DecodeFinish parses a TypeFinish payload.
func DecodeFinish(p []byte) (Finish, error) {
	r := &payloadReader{buf: p, what: "finish"}
	var f Finish
	d, err := r.bytes("digest", sha256.Size)
	if err != nil {
		return Finish{}, err
	}
	copy(f.Digest[:], d)
	if f.Frames, err = r.u32("frames"); err != nil {
		return Finish{}, err
	}
	return f, r.leftover()
}

// EncodeError builds a TypeError payload.
func EncodeError(e ErrorInfo) []byte {
	buf := binary.LittleEndian.AppendUint16(nil, e.Status)
	buf = binary.LittleEndian.AppendUint16(buf, e.RetryAfterSec)
	return append(buf, e.Envelope...)
}

// DecodeError parses a TypeError payload.
func DecodeError(p []byte) (ErrorInfo, error) {
	r := &payloadReader{buf: p, what: "error"}
	var e ErrorInfo
	var err error
	if e.Status, err = r.u16("status"); err != nil {
		return ErrorInfo{}, err
	}
	if e.RetryAfterSec, err = r.u16("retry_after"); err != nil {
		return ErrorInfo{}, err
	}
	e.Envelope = p[r.off:]
	return e, nil
}

// SessionDigest accumulates the SHA-256 session digest: every data frame
// (type, flags, payload — the CRC-covered bytes) in send order. Both
// sides run one; the finish frame carries the client's sum and the
// server refuses the session unless its own matches.
type SessionDigest struct {
	hasher hash.Hash
	frames uint32
}

// NewSessionDigest returns an empty session digest.
func NewSessionDigest() *SessionDigest {
	return &SessionDigest{hasher: sha256.New()}
}

// Add folds one data frame into the digest.
func (d *SessionDigest) Add(f Frame) {
	d.hasher.Write([]byte{byte(f.Type), f.Flags})
	d.hasher.Write(f.Payload)
	d.frames++
}

// Frames returns how many frames have been folded in.
func (d *SessionDigest) Frames() uint32 { return d.frames }

// Sum returns the current digest without resetting it.
func (d *SessionDigest) Sum() [sha256.Size]byte {
	var out [sha256.Size]byte
	copy(out[:], d.hasher.Sum(nil))
	return out
}
