package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHandshake(&buf, Version); err != nil {
		t.Fatalf("WriteHandshake: %v", err)
	}
	v, err := ReadHandshake(&buf)
	if err != nil {
		t.Fatalf("ReadHandshake: %v", err)
	}
	if v != Version {
		t.Fatalf("negotiated version %d, want %d", v, Version)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	if _, err := ReadHandshake(bytes.NewReader([]byte("POST /ver"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic error = %v, want ErrBadMagic", err)
	}
}

func TestNegotiateVersion(t *testing.T) {
	for _, tc := range []struct{ client, want uint8 }{
		{0, 0}, {1, 1}, {Version, Version}, {Version + 5, Version},
	} {
		if got := NegotiateVersion(tc.client); got != tc.want {
			t.Errorf("NegotiateVersion(%d) = %d, want %d", tc.client, got, tc.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Payload: mustEncodeHello(t, Hello{TraceID: "abc", ClaimedUser: "victim", PilotHz: 19000})},
		{Type: TypeSensorChunk, Flags: FlagLast, Payload: EncodeSensorChunk(SensorChunk{
			Kind: SensorMag, Samples: []Sample{{T: 0.01, X: 1, Y: -2, Z: 3.5}},
		})},
		{Type: TypeFinish, Payload: EncodeFinish(Finish{Frames: 7})},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%v): %v", f.Type, err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame(%v): %v", want.Type, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame mismatch: got %+v want %+v", got, want)
		}
	}
}

func mustEncodeHello(t *testing.T, h Hello) []byte {
	t.Helper()
	p, err := EncodeHello(h)
	if err != nil {
		t.Fatalf("EncodeHello: %v", err)
	}
	return p
}

func TestReadFrameRejectsCorruptCRC(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeSegmentMarks, Payload: EncodeSegmentMarks(SegmentMarks{SweepStart: 1, SweepEnd: 2})}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	raw[12] ^= 0x40 // flip a payload bit; the trailing CRC no longer matches
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt frame error = %v, want ErrChecksum", err)
	}
}

func TestReadFrameRejectsOversizedDeclaredLength(t *testing.T) {
	raw := []byte{byte(TypeAudioChunk), 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized frame error = %v, want ErrFrameTooBig", err)
	}
}

func TestReadFrameRejectsUnknownType(t *testing.T) {
	raw := make([]byte, 14)
	raw[0] = 0xee
	if _, err := ReadFrame(bytes.NewReader(raw), 0); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("unknown type error = %v, want ErrUnknownFrame", err)
	}
}

func TestReadFrameRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeFieldChunk, Payload: EncodeFieldChunk(FieldChunk{
		Points: []FieldPoint{{AngleDeg: 30, FreqHz: 1000, LevelDB: 60}},
	})}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d bytes read successfully", cut)
		} else if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
			t.Fatalf("truncation at %d bytes: unexpected error %v", cut, err)
		}
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	hello := Hello{TraceID: "t-1", ClaimedUser: "victim", PilotHz: 19000}
	hp := mustEncodeHello(t, hello)
	if got, err := DecodeHello(hp); err != nil || got != hello {
		t.Fatalf("hello round trip: got %+v err %v", got, err)
	}

	sc := SensorChunk{Kind: SensorAccel, Samples: []Sample{
		{T: 0, X: 0.1, Y: 0.2, Z: 9.8}, {T: 0.01, X: math.Pi, Y: -1, Z: 0},
	}}
	gotSC, err := DecodeSensorChunk(EncodeSensorChunk(sc))
	if err != nil || gotSC.Kind != sc.Kind || len(gotSC.Samples) != len(sc.Samples) {
		t.Fatalf("sensor chunk round trip: got %+v err %v", gotSC, err)
	}
	for i := range sc.Samples {
		if gotSC.Samples[i] != sc.Samples[i] {
			t.Fatalf("sensor sample %d: got %+v want %+v", i, gotSC.Samples[i], sc.Samples[i])
		}
	}

	fc := FieldChunk{Points: []FieldPoint{{AngleDeg: 0, FreqHz: 100, LevelDB: 65.5}}}
	gotFC, err := DecodeFieldChunk(EncodeFieldChunk(fc))
	if err != nil || len(gotFC.Points) != 1 || gotFC.Points[0] != fc.Points[0] {
		t.Fatalf("field chunk round trip: got %+v err %v", gotFC, err)
	}

	ac := AudioChunk{Kind: AudioVoice, Rate: 16000, Samples: []float64{0.5, -0.25, 0}}
	gotAC, err := DecodeAudioChunk(EncodeAudioChunk(ac))
	if err != nil || gotAC.Kind != ac.Kind || len(gotAC.Samples) != 3 {
		t.Fatalf("audio chunk round trip: got %+v err %v", gotAC, err)
	}
	for i := range ac.Samples {
		if math.Float64bits(gotAC.Samples[i]) != math.Float64bits(ac.Samples[i]) {
			t.Fatalf("audio sample %d not bit-identical", i)
		}
	}

	marks := SegmentMarks{SweepStart: 0.2, SweepEnd: 2.3}
	if got, err := DecodeSegmentMarks(EncodeSegmentMarks(marks)); err != nil || got != marks {
		t.Fatalf("segment marks round trip: got %+v err %v", got, err)
	}

	fin := Finish{Frames: 42}
	copy(fin.Digest[:], bytes.Repeat([]byte{0xab}, len(fin.Digest)))
	if got, err := DecodeFinish(EncodeFinish(fin)); err != nil || got != fin {
		t.Fatalf("finish round trip: got %+v err %v", got, err)
	}

	ei := ErrorInfo{Status: 429, RetryAfterSec: 2, Envelope: []byte(`{"error":"overloaded"}`)}
	gotEI, err := DecodeError(EncodeError(ei))
	if err != nil || gotEI.Status != ei.Status || gotEI.RetryAfterSec != ei.RetryAfterSec ||
		!bytes.Equal(gotEI.Envelope, ei.Envelope) {
		t.Fatalf("error round trip: got %+v err %v", gotEI, err)
	}
}

func TestDecodeRejectsCountMismatch(t *testing.T) {
	// A sensor chunk declaring 1000 samples but carrying one sample's
	// bytes must fail without allocating for the declared count.
	p := EncodeSensorChunk(SensorChunk{Kind: SensorGyro, Samples: []Sample{{T: 1}}})
	p[1] = 0xe8 // count LE u32 at offset 1: 1 -> 1000
	p[2] = 0x03
	if _, err := DecodeSensorChunk(p); err == nil {
		t.Fatal("inflated sample count decoded successfully")
	}
	if _, err := DecodeAudioChunk([]byte{byte(AudioVoice), 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("inflated audio count decoded successfully")
	}
}

func TestSessionDigestDetectsReorderAndTamper(t *testing.T) {
	f1 := Frame{Type: TypeSegmentMarks, Payload: EncodeSegmentMarks(SegmentMarks{SweepStart: 1, SweepEnd: 2})}
	f2 := Frame{Type: TypeSensorChunk, Flags: FlagLast, Payload: EncodeSensorChunk(SensorChunk{Kind: SensorMag})}

	sum := func(frames ...Frame) [32]byte {
		d := NewSessionDigest()
		for _, f := range frames {
			d.Add(f)
		}
		return d.Sum()
	}
	if sum(f1, f2) == sum(f2, f1) {
		t.Fatal("session digest ignores frame order")
	}
	tampered := f2
	tampered.Flags = 0
	if sum(f1, f2) == sum(f1, tampered) {
		t.Fatal("session digest ignores flag tampering")
	}
	d := NewSessionDigest()
	d.Add(f1)
	d.Add(f2)
	if d.Frames() != 2 {
		t.Fatalf("Frames() = %d, want 2", d.Frames())
	}
}
