package sensors

import (
	"math"
	"math/rand"
	"testing"

	"voiceguard/internal/geometry"
)

func TestReadQuantization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := Spec{Name: "q", LSB: 0.3, SampleRate: 100}
	s := New(spec, rng)
	v := s.Read(geometry.Vec3{X: 10.123, Y: -5.55, Z: 0.07})
	for _, c := range []float64{v.X, v.Y, v.Z} {
		steps := c / 0.3
		if math.Abs(steps-math.Round(steps)) > 1e-9 {
			t.Errorf("component %v not on 0.3 grid", c)
		}
	}
}

func TestReadSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := Spec{Name: "s", RangeMax: 1200, SampleRate: 100}
	s := New(spec, rng)
	v := s.Read(geometry.Vec3{X: 5000, Y: -5000, Z: 0})
	if v.X != 1200 || v.Y != -1200 {
		t.Errorf("saturated read = %v", v)
	}
}

func TestReadNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := Spec{Name: "n", NoiseRMS: 0.35, SampleRate: 100}
	s := New(spec, rng)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := s.Read(geometry.Vec3{})
		sum += v.X
		sumsq += v.X * v.X
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	// Mean should be near the drawn bias (0 here since BiasRMS=0).
	if math.Abs(mean) > 0.02 {
		t.Errorf("noise mean = %v", mean)
	}
	if math.Abs(sd-0.35) > 0.03 {
		t.Errorf("noise sd = %v, want 0.35", sd)
	}
}

func TestBiasConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := Spec{Name: "b", BiasRMS: 2, SampleRate: 100}
	s := New(spec, rng)
	b := s.Bias()
	if b.Norm() == 0 {
		t.Error("bias should be drawn nonzero almost surely")
	}
	// With no noise, reads = truth + bias exactly.
	v := s.Read(geometry.Vec3{X: 1, Y: 2, Z: 3})
	want := geometry.Vec3{X: 1 + b.X, Y: 2 + b.Y, Z: 3 + b.Z}
	if v.Sub(want).Norm() > 1e-12 {
		t.Errorf("read = %v, want %v", v, want)
	}
}

func TestRecord(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New(AK8975(), rng)
	tr, err := s.Record(1.0, func(t float64) geometry.Vec3 {
		return geometry.Vec3{X: 48}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Errorf("samples = %d, want 100", tr.Len())
	}
	if tr.Samples[0].T != 0 {
		t.Error("first sample should be at t=0")
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.Samples[i].T <= tr.Samples[i-1].T {
			t.Fatal("timestamps not increasing")
		}
	}
	mags := tr.Magnitudes()
	if len(mags) != tr.Len() {
		t.Fatal("magnitude length mismatch")
	}
	m, _ := meanOf(mags)
	if math.Abs(m-48) > 2 {
		t.Errorf("mean magnitude = %v, want ≈48", m)
	}
}

func meanOf(x []float64) (float64, bool) {
	if len(x) == 0 {
		return 0, false
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x)), true
}

func TestRecordErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := New(AK8975(), rng)
	if _, err := s.Record(0, func(float64) geometry.Vec3 { return geometry.Vec3{} }); err == nil {
		t.Error("zero duration should error")
	}
	noRate := New(Spec{Name: "x"}, rng)
	if _, err := noRate.Record(1, func(float64) geometry.Vec3 { return geometry.Vec3{} }); err == nil {
		t.Error("zero rate should error")
	}
}

func TestRates(t *testing.T) {
	tr := &Trace{Samples: []Sample{
		{T: 0, V: geometry.Vec3{X: 0}},
		{T: 0.1, V: geometry.Vec3{X: 3}},
		{T: 0.2, V: geometry.Vec3{X: 3}},
	}}
	r := tr.Rates()
	if len(r) != 2 {
		t.Fatalf("rates len = %d", len(r))
	}
	if math.Abs(r[0]-30) > 1e-9 || r[1] != 0 {
		t.Errorf("rates = %v", r)
	}
	if (&Trace{}).Rates() != nil {
		t.Error("empty trace rates should be nil")
	}
	// Non-increasing timestamps yield 0 rather than Inf.
	bad := &Trace{Samples: []Sample{{T: 1}, {T: 1}}}
	if got := bad.Rates(); got[0] != 0 {
		t.Errorf("degenerate dt rate = %v", got[0])
	}
}

func TestDefaultSpecsPlausible(t *testing.T) {
	for _, spec := range []Spec{AK8975(), PhoneAccelerometer(), PhoneGyroscope()} {
		if spec.Name == "" || spec.SampleRate <= 0 || spec.NoiseRMS <= 0 {
			t.Errorf("spec %+v incomplete", spec)
		}
	}
	if AK8975().LSB != 0.3 || AK8975().RangeMax != 1200 {
		t.Error("AK8975 must match the paper's datasheet values")
	}
}
