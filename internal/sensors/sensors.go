// Package sensors models the smartphone's inertial and magnetic sensors:
// quantization, additive Gaussian noise, constant bias and range
// saturation. The magnetometer defaults follow the AK8975 part named in
// the paper (0.3 µT/LSB sensitivity, ±1200 µT range).
package sensors

import (
	"fmt"
	"math"
	"math/rand"

	"voiceguard/internal/geometry"
)

// Spec describes a three-axis sensor's imperfections.
type Spec struct {
	// Name identifies the part for diagnostics.
	Name string
	// LSB is the quantization step (output units per least-significant
	// bit). Zero disables quantization.
	// unit: any
	LSB float64
	// RangeMax saturates each axis at ±RangeMax. Zero disables.
	// unit: any
	RangeMax float64
	// NoiseRMS is the per-axis Gaussian noise standard deviation.
	// unit: any
	NoiseRMS float64
	// BiasRMS draws a constant per-axis bias at construction time with
	// this standard deviation.
	// unit: any
	BiasRMS float64
	// SampleRate is the nominal output data rate in Hz.
	// unit: Hz
	SampleRate float64
}

// AK8975 returns the magnetometer spec of the part used by the paper's
// test phones (units: µT).
func AK8975() Spec {
	return Spec{
		Name:       "AK8975",
		LSB:        0.3,
		RangeMax:   1200,
		NoiseRMS:   0.35,
		BiasRMS:    1.5,
		SampleRate: 100,
	}
}

// PhoneAccelerometer returns a typical phone accelerometer spec (m/s²).
func PhoneAccelerometer() Spec {
	return Spec{
		Name:       "BMA250-class",
		LSB:        0.0096,
		RangeMax:   39.2, // ±4 g
		NoiseRMS:   0.03,
		BiasRMS:    0.05,
		SampleRate: 200,
	}
}

// PhoneGyroscope returns a typical phone gyroscope spec (rad/s).
func PhoneGyroscope() Spec {
	return Spec{
		Name:       "MPU-3050-class",
		LSB:        0.0011,
		RangeMax:   8.7, // ±500 °/s
		NoiseRMS:   0.005,
		BiasRMS:    0.01,
		SampleRate: 200,
	}
}

// Sensor applies a Spec to ground-truth values.
type Sensor struct {
	spec Spec
	bias geometry.Vec3
	rng  *rand.Rand
}

// New constructs a sensor, drawing its constant bias from rng.
func New(spec Spec, rng *rand.Rand) *Sensor {
	return &Sensor{
		spec: spec,
		bias: geometry.Vec3{
			X: rng.NormFloat64() * spec.BiasRMS,
			Y: rng.NormFloat64() * spec.BiasRMS,
			Z: rng.NormFloat64() * spec.BiasRMS,
		},
		rng: rng,
	}
}

// Spec returns the sensor's specification.
func (s *Sensor) Spec() Spec { return s.spec }

// Bias returns the drawn constant bias.
func (s *Sensor) Bias() geometry.Vec3 { return s.bias }

// Read converts a ground-truth vector into a sensor output: bias + noise,
// then saturation, then quantization.
func (s *Sensor) Read(truth geometry.Vec3) geometry.Vec3 {
	v := truth.Add(s.bias).Add(geometry.Vec3{
		X: s.rng.NormFloat64() * s.spec.NoiseRMS,
		Y: s.rng.NormFloat64() * s.spec.NoiseRMS,
		Z: s.rng.NormFloat64() * s.spec.NoiseRMS,
	})
	v = geometry.Vec3{X: s.clampAxis(v.X), Y: s.clampAxis(v.Y), Z: s.clampAxis(v.Z)}
	if s.spec.LSB > 0 {
		v = geometry.Vec3{
			X: math.Round(v.X/s.spec.LSB) * s.spec.LSB,
			Y: math.Round(v.Y/s.spec.LSB) * s.spec.LSB,
			Z: math.Round(v.Z/s.spec.LSB) * s.spec.LSB,
		}
	}
	return v
}

func (s *Sensor) clampAxis(v float64) float64 {
	if s.spec.RangeMax <= 0 {
		return v
	}
	if v > s.spec.RangeMax {
		return s.spec.RangeMax
	}
	if v < -s.spec.RangeMax {
		return -s.spec.RangeMax
	}
	return v
}

// Sample is one timestamped sensor reading.
type Sample struct {
	// T is the sample time in seconds.
	// unit: s
	T float64
	// V is the sensed vector in the sensor's units.
	V geometry.Vec3
}

// Trace is a time series of samples from one sensor.
type Trace struct {
	// Name labels the producing sensor.
	Name string
	// Samples are in increasing time order.
	Samples []Sample
}

// Record samples a ground-truth function truth(t) at the sensor's rate
// over [0, duration) seconds.
// unit: duration s
func (s *Sensor) Record(duration float64, truth func(t float64) geometry.Vec3) (*Trace, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("sensors: duration %v must be positive", duration)
	}
	if s.spec.SampleRate <= 0 {
		return nil, fmt.Errorf("sensors: %s has no sample rate", s.spec.Name)
	}
	n := int(duration * s.spec.SampleRate)
	tr := &Trace{Name: s.spec.Name, Samples: make([]Sample, 0, n)}
	for i := 0; i < n; i++ {
		t := float64(i) / s.spec.SampleRate
		tr.Samples = append(tr.Samples, Sample{T: t, V: s.Read(truth(t))})
	}
	return tr, nil
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Samples) }

// Magnitudes returns |V| for every sample.
func (t *Trace) Magnitudes() []float64 {
	out := make([]float64, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.V.Norm()
	}
	return out
}

// Rates returns the per-sample magnitude change rate |dB|/dt between
// consecutive samples (length Len()-1). It is the signal behind the
// paper's changing-rate threshold βt.
func (t *Trace) Rates() []float64 {
	if len(t.Samples) < 2 {
		return nil
	}
	out := make([]float64, len(t.Samples)-1)
	for i := 1; i < len(t.Samples); i++ {
		dt := t.Samples[i].T - t.Samples[i-1].T
		if dt <= 0 {
			out[i-1] = 0
			continue
		}
		out[i-1] = t.Samples[i].V.Sub(t.Samples[i-1].V).Norm() / dt
	}
	return out
}
