package geometry

import (
	"errors"
	"math"

	"voiceguard/internal/stats"
)

// Circle is a circle in the 2D trajectory plane.
type Circle struct {
	Center Vec2
	Radius float64 // unit: m
}

// ErrDegenerate is returned when a fit is attempted on fewer than three
// points or on (nearly) collinear points that do not determine a circle.
var ErrDegenerate = errors.New("geometry: degenerate point set for circle fit")

// FitCircleKasa computes the algebraic least-squares circle fit of Kåsa.
//
// It minimizes Σ (|p_i - c|² - r²)², which reduces to a 3×3 linear system.
// The algebraic fit is fast and is used as the initial estimate for the
// geometric refinement in FitCircle.
func FitCircleKasa(pts []Vec2) (Circle, error) {
	if len(pts) < 3 {
		return Circle{}, ErrDegenerate
	}
	// Center the data for numerical stability.
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	n := float64(len(pts))
	mx /= n
	my /= n

	var suu, suv, svv, suuu, svvv, suvv, svuu float64
	for _, p := range pts {
		u := p.X - mx
		v := p.Y - my
		suu += u * u
		svv += v * v
		suv += u * v
		suuu += u * u * u
		svvv += v * v * v
		suvv += u * v * v
		svuu += v * u * u
	}
	// Solve
	//   [suu suv] [uc]   [ (suuu + suvv)/2 ]
	//   [suv svv] [vc] = [ (svvv + svuu)/2 ]
	det := suu*svv - suv*suv
	scale := suu + svv
	if stats.IsZero(scale) || math.Abs(det) < 1e-12*scale*scale {
		return Circle{}, ErrDegenerate
	}
	bu := (suuu + suvv) / 2
	bv := (svvv + svuu) / 2
	uc := (bu*svv - bv*suv) / det
	vc := (bv*suu - bu*suv) / det

	r2 := uc*uc + vc*vc + (suu+svv)/n
	return Circle{Center: Vec2{uc + mx, vc + my}, Radius: math.Sqrt(r2)}, nil
}

// FitCircle computes a geometric least-squares circle fit: it minimizes the
// sum of squared orthogonal distances Σ (|p_i - c| - r)² via Gauss–Newton
// iteration, seeded with the Kåsa algebraic fit. This follows the approach
// of Gander, Golub and Strebel, "Least-squares fitting of circles and
// ellipses" (the method the paper cites for its distance estimation).
func FitCircle(pts []Vec2) (Circle, error) {
	c, err := FitCircleKasa(pts)
	if err != nil {
		return Circle{}, err
	}
	const (
		maxIter = 64
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		// Gauss–Newton step on parameters (cx, cy, r).
		// Residual f_i = |p_i - c| - r, Jacobian rows:
		//   df/dcx = -(x_i-cx)/d_i, df/dcy = -(y_i-cy)/d_i, df/dr = -1.
		var jtj [3][3]float64
		var jtf [3]float64
		ok := true
		for _, p := range pts {
			dx := p.X - c.Center.X
			dy := p.Y - c.Center.Y
			d := math.Hypot(dx, dy)
			if d < 1e-12 {
				ok = false
				break
			}
			f := d - c.Radius
			j := [3]float64{-dx / d, -dy / d, -1}
			for a := 0; a < 3; a++ {
				jtf[a] += j[a] * f
				for b := 0; b < 3; b++ {
					jtj[a][b] += j[a] * j[b]
				}
			}
		}
		if !ok {
			break
		}
		step, solved := solve3(jtj, [3]float64{-jtf[0], -jtf[1], -jtf[2]})
		if !solved {
			break
		}
		c.Center.X += step[0]
		c.Center.Y += step[1]
		c.Radius += step[2]
		if step[0]*step[0]+step[1]*step[1]+step[2]*step[2] < tol*tol {
			break
		}
	}
	if c.Radius <= 0 || math.IsNaN(c.Radius) || math.IsInf(c.Radius, 0) {
		return Circle{}, ErrDegenerate
	}
	return c, nil
}

// solve3 solves a 3×3 linear system with partial pivoting. The second
// return value reports whether the system was well conditioned enough to
// solve.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	// Augment and eliminate.
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-14 {
			return [3]float64{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, true
}

// RMSResidual returns the root-mean-square orthogonal distance of the
// points from the circle, a goodness-of-fit measure used to reject
// trajectories that are not arc-like.
func (c Circle) RMSResidual(pts []Vec2) float64 {
	if len(pts) == 0 {
		return 0
	}
	var s float64
	for _, p := range pts {
		r := p.Dist(c.Center) - c.Radius
		s += r * r
	}
	return math.Sqrt(s / float64(len(pts)))
}

// FitLine fits a total-least-squares line through pts and returns a point
// on the line and its unit direction. It is used to validate the paper's
// assumption that the phone's approach trajectory is approximately
// straight.
func FitLine(pts []Vec2) (point, dir Vec2, err error) {
	if len(pts) < 2 {
		return Vec2{}, Vec2{}, ErrDegenerate
	}
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	n := float64(len(pts))
	mx /= n
	my /= n
	var sxx, sxy, syy float64
	for _, p := range pts {
		u := p.X - mx
		v := p.Y - my
		sxx += u * u
		sxy += u * v
		syy += v * v
	}
	if stats.IsZero(sxx + syy) {
		return Vec2{}, Vec2{}, ErrDegenerate
	}
	// Principal eigenvector of the 2×2 scatter matrix.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	l := tr/2 + math.Sqrt(tr*tr/4-det)
	var d Vec2
	if math.Abs(sxy) > 1e-18 {
		d = Vec2{l - syy, sxy}
	} else if sxx >= syy {
		d = Vec2{1, 0}
	} else {
		d = Vec2{0, 1}
	}
	return Vec2{mx, my}, d.Normalize(), nil
}
