// Package geometry provides small vector types and geometric fitting
// routines used by the trajectory, sound-field and magnetics subsystems.
//
// The central algorithm is least-squares circle fitting (paper §IV-B1),
// used to estimate the phone→mouth distance from a recovered 2D motion
// trajectory. Both the algebraic Kåsa fit and an iterative geometric
// refinement in the style of Gander, Golub and Strebel are provided.
package geometry

import (
	"fmt"
	"math"

	"voiceguard/internal/stats"
)

// Vec2 is a point or direction in the 2D trajectory plane. Units are meters
// unless stated otherwise.
type Vec2 struct {
	X, Y float64 // unit: any
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s (polymorphic: a unit direction vector
// times a length is a position).
// unit: s any
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar (z) component of the 2D cross product v×w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Normalize returns the unit vector in the direction of v. The zero vector
// is returned unchanged.
func (v Vec2) Normalize() Vec2 {
	n := v.Norm()
	if stats.IsZero(n) {
		return v
	}
	return v.Scale(1 / n)
}

// Rotate returns v rotated counterclockwise by theta radians.
// unit: theta rad
func (v Vec2) Rotate(theta float64) Vec2 {
	s, c := math.Sincos(theta)
	return Vec2{v.X*c - v.Y*s, v.X*s + v.Y*c}
}

// Angle returns the angle of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.4g, %.4g)", v.X, v.Y) }

// Vec3 is a point or direction in 3D space, used by the magnetics and
// sensor models. Units are meters unless stated otherwise.
type Vec3 struct {
	X, Y, Z float64 // unit: any
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s (polymorphic: a unit direction vector
// times a length is a position).
// unit: s any
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Normalize returns the unit vector in the direction of v. The zero vector
// is returned unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if stats.IsZero(n) {
		return v
	}
	return v.Scale(1 / n)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z) }
