package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVec2Basics(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"norm 3-4-5", Vec2{3, 4}.Norm(), 5},
		{"dot orthogonal", Vec2{1, 0}.Dot(Vec2{0, 1}), 0},
		{"dot parallel", Vec2{2, 3}.Dot(Vec2{2, 3}), 13},
		{"cross unit", Vec2{1, 0}.Cross(Vec2{0, 1}), 1},
		{"cross anti", Vec2{0, 1}.Cross(Vec2{1, 0}), -1},
		{"dist", Vec2{1, 1}.Dist(Vec2{4, 5}), 5},
		{"angle x-axis", Vec2{1, 0}.Angle(), 0},
		{"angle y-axis", Vec2{0, 2}.Angle(), math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !almostEq(tt.got, tt.want, eps) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVec2AddSubScale(t *testing.T) {
	v := Vec2{1, 2}
	w := Vec2{-3, 4}
	if got := v.Add(w); got != (Vec2{-2, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{4, -2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2.5); got != (Vec2{2.5, 5}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVec2RotatePreservesNorm(t *testing.T) {
	f := func(x, y, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(theta) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(theta, 0) {
			return true
		}
		// Constrain magnitudes so float error stays bounded.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		theta = math.Mod(theta, 2*math.Pi)
		v := Vec2{x, y}
		r := v.Rotate(theta)
		return almostEq(v.Norm(), r.Norm(), 1e-6*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec2RotateRoundTrip(t *testing.T) {
	v := Vec2{3, -7}
	got := v.Rotate(1.234).Rotate(-1.234)
	if !almostEq(got.X, v.X, 1e-12) || !almostEq(got.Y, v.Y, 1e-12) {
		t.Errorf("round trip = %v, want %v", got, v)
	}
}

func TestVec2NormalizeZero(t *testing.T) {
	if got := (Vec2{}).Normalize(); got != (Vec2{}) {
		t.Errorf("Normalize(0) = %v, want zero vector", got)
	}
	u := Vec2{5, 12}.Normalize()
	if !almostEq(u.Norm(), 1, eps) {
		t.Errorf("unit norm = %v", u.Norm())
	}
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	c := v.Cross(w)
	want := Vec3{-3, 6, -3}
	if c != want {
		t.Errorf("Cross = %v, want %v", c, want)
	}
	// Cross product is orthogonal to both inputs.
	if !almostEq(c.Dot(v), 0, eps) || !almostEq(c.Dot(w), 0, eps) {
		t.Errorf("cross not orthogonal: %v, %v", c.Dot(v), c.Dot(w))
	}
	if !almostEq(Vec3{2, 3, 6}.Norm(), 7, eps) {
		t.Error("Vec3 norm")
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(0) = %v", got)
	}
}

func TestVec3CrossAnticommutative(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		for _, v := range []float64{ax, ay, az, bx, by, bz} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := Vec3{math.Mod(ax, 1e3), math.Mod(ay, 1e3), math.Mod(az, 1e3)}
		b := Vec3{math.Mod(bx, 1e3), math.Mod(by, 1e3), math.Mod(bz, 1e3)}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
