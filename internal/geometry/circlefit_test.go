package geometry

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// circlePoints samples n points on the arc [a0, a1] of the given circle,
// with optional radial Gaussian noise.
func circlePoints(c Circle, a0, a1 float64, n int, noise float64, rng *rand.Rand) []Vec2 {
	pts := make([]Vec2, n)
	for i := range pts {
		theta := a0 + (a1-a0)*float64(i)/float64(n-1)
		r := c.Radius
		if noise > 0 {
			r += rng.NormFloat64() * noise
		}
		pts[i] = Vec2{
			c.Center.X + r*math.Cos(theta),
			c.Center.Y + r*math.Sin(theta),
		}
	}
	return pts
}

func TestFitCircleExact(t *testing.T) {
	tests := []struct {
		name string
		c    Circle
		a0   float64
		a1   float64
		n    int
	}{
		{"full circle", Circle{Vec2{1, -2}, 3}, 0, 2 * math.Pi, 24},
		{"half circle", Circle{Vec2{-5, 4}, 0.06}, 0, math.Pi, 12},
		{"small arc", Circle{Vec2{0, 0}, 0.10}, 0.2, 1.2, 16},
		{"tiny radius (6 cm, paper Dt)", Circle{Vec2{0.1, 0.1}, 0.06}, -0.5, 1.5, 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts := circlePoints(tt.c, tt.a0, tt.a1, tt.n, 0, nil)
			for _, fit := range []func([]Vec2) (Circle, error){FitCircleKasa, FitCircle} {
				got, err := fit(pts)
				if err != nil {
					t.Fatalf("fit: %v", err)
				}
				if !almostEq(got.Radius, tt.c.Radius, 1e-6) {
					t.Errorf("radius = %v, want %v", got.Radius, tt.c.Radius)
				}
				if got.Center.Dist(tt.c.Center) > 1e-6 {
					t.Errorf("center = %v, want %v", got.Center, tt.c.Center)
				}
			}
		})
	}
}

func TestFitCircleNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := Circle{Vec2{0.02, 0.15}, 0.06} // 6 cm source distance.
	pts := circlePoints(truth, -0.8, 0.9, 60, 0.002, rng)
	got, err := FitCircle(pts)
	if err != nil {
		t.Fatalf("FitCircle: %v", err)
	}
	if math.Abs(got.Radius-truth.Radius) > 0.005 {
		t.Errorf("radius = %v, want %v ± 5mm", got.Radius, truth.Radius)
	}
	if got.Center.Dist(truth.Center) > 0.01 {
		t.Errorf("center = %v, want %v ± 1cm", got.Center, truth.Center)
	}
	// Geometric refinement should not be worse than the algebraic seed.
	kasa, err := FitCircleKasa(pts)
	if err != nil {
		t.Fatalf("FitCircleKasa: %v", err)
	}
	if got.RMSResidual(pts) > kasa.RMSResidual(pts)+1e-12 {
		t.Errorf("geometric residual %v > algebraic residual %v",
			got.RMSResidual(pts), kasa.RMSResidual(pts))
	}
}

func TestFitCircleDegenerate(t *testing.T) {
	tests := []struct {
		name string
		pts  []Vec2
	}{
		{"too few", []Vec2{{0, 0}, {1, 1}}},
		{"collinear", []Vec2{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}},
		{"repeated point", []Vec2{{1, 1}, {1, 1}, {1, 1}, {1, 1}}},
		{"empty", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FitCircle(tt.pts); !errors.Is(err, ErrDegenerate) {
				t.Errorf("err = %v, want ErrDegenerate", err)
			}
		})
	}
}

func TestFitCircleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		truth := Circle{
			Center: Vec2{rng.Float64()*2 - 1, rng.Float64()*2 - 1},
			Radius: 0.02 + rng.Float64()*0.5,
		}
		a0 := rng.Float64() * math.Pi
		span := 0.8 + rng.Float64()*2
		pts := circlePoints(truth, a0, a0+span, 30, 0, nil)
		got, err := FitCircle(pts)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got.Radius-truth.Radius) > 1e-5*(1+truth.Radius) {
			t.Fatalf("case %d: radius = %v, want %v", i, got.Radius, truth.Radius)
		}
	}
}

func TestRMSResidual(t *testing.T) {
	c := Circle{Vec2{0, 0}, 1}
	onCircle := circlePoints(c, 0, 2*math.Pi, 10, 0, nil)
	if got := c.RMSResidual(onCircle); got > 1e-12 {
		t.Errorf("residual on exact points = %v, want 0", got)
	}
	if got := c.RMSResidual(nil); got != 0 {
		t.Errorf("residual of empty = %v, want 0", got)
	}
	// Points at radius 2 have residual exactly 1.
	far := circlePoints(Circle{Vec2{0, 0}, 2}, 0, 2*math.Pi, 10, 0, nil)
	if got := c.RMSResidual(far); !almostEq(got, 1, 1e-9) {
		t.Errorf("residual = %v, want 1", got)
	}
}

func TestFitLine(t *testing.T) {
	// Exact line y = 2x + 1.
	var pts []Vec2
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.3
		pts = append(pts, Vec2{x, 2*x + 1})
	}
	_, dir, err := FitLine(pts)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	wantSlope := 2.0
	if !almostEq(dir.Y/dir.X, wantSlope, 1e-9) {
		t.Errorf("slope = %v, want %v", dir.Y/dir.X, wantSlope)
	}

	// Vertical line.
	pts = pts[:0]
	for i := 0; i < 5; i++ {
		pts = append(pts, Vec2{3, float64(i)})
	}
	_, dir, err = FitLine(pts)
	if err != nil {
		t.Fatalf("FitLine vertical: %v", err)
	}
	if math.Abs(dir.X) > 1e-9 {
		t.Errorf("vertical dir = %v, want (0, ±1)", dir)
	}

	if _, _, err := FitLine([]Vec2{{1, 1}}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("single point err = %v, want ErrDegenerate", err)
	}
	if _, _, err := FitLine([]Vec2{{1, 1}, {1, 1}, {1, 1}}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("repeated point err = %v, want ErrDegenerate", err)
	}
}

func BenchmarkFitCircle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := circlePoints(Circle{Vec2{0, 0.1}, 0.06}, -0.8, 0.9, 100, 0.002, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitCircle(pts); err != nil {
			b.Fatal(err)
		}
	}
}
