package baseline

import (
	"math/rand"
	"testing"

	"voiceguard/internal/attack"
	"voiceguard/internal/audio"
	"voiceguard/internal/speech"
)

// corpus renders live and replayed utterance pairs.
func corpus(t testing.TB, n int, seed int64) (live, replayed []*audio.Signal) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		p := speech.RandomProfile("spk", rng)
		synth, err := speech.NewSynthesizer(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		utt, err := synth.SayDigits("472913")
		if err != nil {
			t.Fatal(err)
		}
		ch := speech.Channel{Gain: 0.8, NoiseRMS: 0.003, LowCut: 90, HighCut: 7200}
		live = append(live, ch.Apply(utt, rng))
		replayed = append(replayed, attack.PlaybackColoration(ch.Apply(utt, rng), rng))
	}
	return live, replayed
}

func TestFeaturesShape(t *testing.T) {
	live, _ := corpus(t, 1, 1)
	f, err := Features(live[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != len(featureBands)+3 {
		t.Errorf("features = %d, want %d", len(f), len(featureBands)+3)
	}
	for i, v := range f {
		if v != v { // NaN check
			t.Errorf("feature %d is NaN", i)
		}
	}
}

func TestFeaturesErrors(t *testing.T) {
	if _, err := Features(nil); err == nil {
		t.Error("nil signal accepted")
	}
	if _, err := Features(&audio.Signal{Rate: 16000}); err == nil {
		t.Error("empty signal accepted")
	}
	silent := audio.NewSignal(1, 16000)
	if _, err := Features(silent); err == nil {
		t.Error("silent signal accepted")
	}
}

func TestTrainErrors(t *testing.T) {
	live, replayed := corpus(t, 2, 2)
	if _, err := Train(nil, replayed, 1); err == nil {
		t.Error("no live class accepted")
	}
	if _, err := Train(live, nil, 1); err == nil {
		t.Error("no replay class accepted")
	}
}

func TestDetectorBetterThanChanceButImperfect(t *testing.T) {
	// The paper's §II point: acoustic-only replay detection works in
	// aggregate but is unreliable per-trial — playback coloration is
	// deliberately subtle. The detector must beat chance clearly, yet
	// make mistakes a physical check would not.
	liveTrain, repTrain := corpus(t, 30, 3)
	d, err := Train(liveTrain, repTrain, 3)
	if err != nil {
		t.Fatal(err)
	}
	liveTest, repTest := corpus(t, 30, 4)
	var correct, errors int
	for _, s := range liveTest {
		ok, err := d.IsLive(s)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			correct++
		} else {
			errors++
		}
	}
	for _, s := range repTest {
		ok, err := d.IsLive(s)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			correct++
		} else {
			errors++
		}
	}
	total := len(liveTest) + len(repTest)
	acc := float64(correct) / float64(total)
	if acc < 0.6 {
		t.Errorf("accuracy %.2f barely above chance", acc)
	}
	if errors == 0 {
		t.Log("note: acoustic baseline perfect on this draw — unexpected but not a failure")
	}
}

func TestScoreOrdering(t *testing.T) {
	liveTrain, repTrain := corpus(t, 30, 5)
	d, err := Train(liveTrain, repTrain, 5)
	if err != nil {
		t.Fatal(err)
	}
	liveTest, repTest := corpus(t, 20, 6)
	var liveMean, repMean float64
	for i := range liveTest {
		ls, err := d.Score(liveTest[i])
		if err != nil {
			t.Fatal(err)
		}
		rs, err := d.Score(repTest[i])
		if err != nil {
			t.Fatal(err)
		}
		liveMean += ls
		repMean += rs
	}
	if liveMean <= repMean {
		t.Errorf("mean live score %v not above mean replay score %v",
			liveMean/float64(len(liveTest)), repMean/float64(len(repTest)))
	}
}
