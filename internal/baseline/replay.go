// Package baseline implements the acoustic-only replay countermeasure the
// paper's related work surveys (§II: far-field/channel-noise replay
// detectors, all of which "suffer from high false acceptance rate").
// It classifies an utterance as live or replayed purely from spectral
// statistics of the audio — no sensors — and serves as the comparison
// point that motivates VoiceGuard's physical (magnetometer + sound-field)
// approach.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"voiceguard/internal/audio"
	"voiceguard/internal/dsp"
	"voiceguard/internal/svm"
)

// featureBands are the octave-ish analysis bands in Hz. Playback through
// a loudspeaker reshapes the band balance (bass roll-off, treble cut) and
// adds a noise floor.
var featureBands = [...][2]float64{
	{60, 250}, {250, 500}, {500, 1000}, {1000, 2000},
	{2000, 3500}, {3500, 5000}, {5000, 6500}, {6500, 7900},
}

// Features extracts the replay-detection feature vector of an utterance:
// band log-energies normalized to the total (channel shape), the spectral
// rolloff frequency, the high/low band ratio, and a noise-floor estimate
// from the quietest frames.
func Features(s *audio.Signal) ([]float64, error) {
	if s == nil || s.Len() == 0 {
		return nil, errors.New("baseline: empty signal")
	}
	sp, err := dsp.STFT(s.Samples, dsp.STFTConfig{
		FrameSize:  512,
		HopSize:    256,
		SampleRate: s.Rate,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: analyzing utterance: %w", err)
	}
	nyquist := s.Rate / 2

	// Mean band energies across frames.
	bandE := make([]float64, len(featureBands))
	var total float64
	for f := 0; f < sp.NumFrames(); f++ {
		for b, band := range featureBands {
			hi := band[1]
			if hi > nyquist {
				hi = nyquist
			}
			e := sp.BandEnergy(f, band[0], hi)
			bandE[b] += e
			total += e
		}
	}
	if total <= 0 {
		return nil, errors.New("baseline: silent utterance")
	}
	out := make([]float64, 0, len(featureBands)+3)
	for _, e := range bandE {
		out = append(out, math.Log(e/total+1e-12))
	}

	// Spectral rolloff: the frequency below which 95% of energy lies,
	// averaged over frames.
	var rolloff float64
	for f := 0; f < sp.NumFrames(); f++ {
		frame := sp.Frames[f]
		var fe float64
		for _, v := range frame {
			fe += v * v
		}
		if fe <= 0 {
			continue
		}
		var acc float64
		k := 0
		for ; k < len(frame); k++ {
			acc += frame[k] * frame[k]
			if acc >= 0.95*fe {
				break
			}
		}
		rolloff += sp.BinFreq(k)
	}
	rolloff /= float64(sp.NumFrames())
	out = append(out, rolloff/nyquist)

	// High/low ratio.
	lo := bandE[0] + bandE[1] + bandE[2]
	hi := bandE[5] + bandE[6] + bandE[7]
	out = append(out, math.Log((hi+1e-12)/(lo+1e-12)))

	// Noise floor: mean energy of the quietest decile of frames relative
	// to the overall mean (playback adds amplifier hiss).
	energies := make([]float64, sp.NumFrames())
	var meanE float64
	for f := range energies {
		energies[f] = sp.BandEnergy(f, 60, nyquist)
		meanE += energies[f]
	}
	meanE /= float64(len(energies))
	sortFloats(energies)
	decile := energies[:max(1, len(energies)/10)]
	var floor float64
	for _, e := range decile {
		floor += e
	}
	floor /= float64(len(decile))
	out = append(out, math.Log((floor+1e-12)/(meanE+1e-12)))
	return out, nil
}

// Detector is a trained acoustic replay detector.
type Detector struct {
	model *svm.Model
}

// Train fits the detector from live and replayed utterances.
func Train(live, replayed []*audio.Signal, seed int64) (*Detector, error) {
	if len(live) == 0 || len(replayed) == 0 {
		return nil, fmt.Errorf("baseline: training needs both classes (%d live, %d replayed)",
			len(live), len(replayed))
	}
	var x [][]float64
	var y []int
	for _, s := range live {
		f, err := Features(s)
		if err != nil {
			return nil, err
		}
		x = append(x, f)
		y = append(y, 1)
	}
	for _, s := range replayed {
		f, err := Features(s)
		if err != nil {
			return nil, err
		}
		x = append(x, f)
		y = append(y, -1)
	}
	m, err := svm.Train(x, y, svm.TrainConfig{Seed: seed, Lambda: 1e-2})
	if err != nil {
		return nil, fmt.Errorf("baseline: training detector: %w", err)
	}
	return &Detector{model: m}, nil
}

// Score returns the liveness margin of an utterance: positive = live.
func (d *Detector) Score(s *audio.Signal) (float64, error) {
	f, err := Features(s)
	if err != nil {
		return 0, err
	}
	return d.model.Margin(f), nil
}

// IsLive classifies an utterance.
func (d *Detector) IsLive(s *audio.Signal) (bool, error) {
	score, err := d.Score(s)
	if err != nil {
		return false, err
	}
	return score >= 0, nil
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
